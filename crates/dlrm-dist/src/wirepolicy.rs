//! Error-bounded adaptive wire-precision policy for the gradient allreduce.
//!
//! The paper's 16-bit wire path (§ "Mixed precision") ships every gradient
//! bucket in BF16. This module goes one tier deeper: per bucket it picks
//! FP32, BF16, or scaled INT8 from *running gradient statistics*, subject to
//! a user-supplied absolute error bound on the reduced values.
//!
//! # Determinism without metadata round-trips
//!
//! The decision inputs are the post-allreduce reduced gradients, which are
//! bitwise identical on every rank (the `_wire` collectives guarantee this
//! — see `dlrm_comm::collectives`). A pure function of bitwise-identical
//! state is itself bitwise identical, so every rank independently computes
//! the *same* per-bucket precision each step with zero extra wire traffic.
//! The INT8 tier is always [`WirePrecision::Int8Shared`] (the scale is part
//! of the rank-replicated decision), so no per-chunk scale headers ship
//! either: the wire cost of an INT8 bucket is exactly `elems` bytes.
//!
//! # The error model
//!
//! A ring allreduce over `R` ranks quantizes each element at most `R + 1`
//! times (`R - 1` reduce-scatter hops plus one allgather-source encode,
//! plus slack for the standalone reduce-scatter contract). One symmetric
//! INT8 quantization with scale `s` has absolute error ≤ `s / 2`; one BF16
//! narrowing of a value bounded by `A` has error ≤ `A · 2⁻⁸`. The policy
//! admits a tier only when the accumulated worst case fits the bound:
//!
//! * INT8: `(R + 1) · s / 2 ≤ bound`, with `s = headroom · absmax / 127`.
//! * BF16: `(R + 1) · headroom · absmax · 2⁻⁸ ≤ bound`.
//!
//! `absmax` here is a running per-bucket envelope of the *summed* gradient
//! magnitude: raised instantly when observed magnitudes grow, decayed
//! geometrically when they shrink, and inflated by a `headroom` factor so a
//! one-step jump within `headroom ×` of the envelope still lands on the
//! representable grid. A bucket with no history yet (or whose envelope is
//! degenerate) is shipped in FP32 — the policy only ever tightens precision
//! on evidence.

use dlrm_comm::wire::WirePrecision;

/// Envelope decay per step: the running absmax never drops faster than
/// halving, so a transiently quiet bucket cannot trick the policy into a
/// scale the next step overflows.
const ABSMAX_DECAY: f32 = 0.5;

/// Multiplier on the running absmax when sizing the INT8 grid / BF16 bound:
/// gradients may grow this much step-over-step without leaving the grid.
const HEADROOM: f32 = 2.0;

/// Largest magnitude one INT8 code step represents: symmetric grid over
/// `[-127, 127]` (−128 unused), matching `dlrm_kernels::int8wire`.
const INT8_LEVELS: f32 = 127.0;

/// Relative error of one BF16 round-to-nearest-even narrowing: 8 explicit
/// mantissa bits → half a ulp is `2⁻⁸` of the magnitude.
const BF16_REL_ERR: f32 = 1.0 / 256.0;

/// Per-step decision counts, for benchmarks and experiment reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PolicyStats {
    /// Buckets shipped FP32 (cold or out of bound).
    pub fp32: u64,
    /// Buckets shipped BF16.
    pub bf16: u64,
    /// Buckets shipped shared-scale INT8.
    pub int8: u64,
}

impl PolicyStats {
    /// Total decisions recorded.
    pub fn total(&self) -> u64 {
        self.fp32 + self.bf16 + self.int8
    }
}

/// Running per-bucket statistics + the pure decision function.
///
/// Bucket indices follow the [`crate::bucketing::BucketPlan`] issue order
/// (reverse flat order); [`AdaptivePolicy::observe_flat`] replays exactly
/// that split so observations and decisions always line up.
#[derive(Debug, Clone)]
pub struct AdaptivePolicy {
    /// Absolute error bound on each reduced element.
    error_bound: f32,
    /// Number of ranks participating in the allreduce.
    ranks: usize,
    /// Running absmax envelope per bucket; `None` until first observed.
    absmax: Vec<Option<f32>>,
    /// Reused decision buffer handed to the reducer each step.
    decisions: Vec<WirePrecision>,
    stats: PolicyStats,
}

impl AdaptivePolicy {
    /// A policy with no history: every bucket starts FP32.
    pub fn new(error_bound: f32, ranks: usize) -> Self {
        assert!(
            error_bound > 0.0 && error_bound.is_finite(),
            "adaptive wire error bound must be positive and finite"
        );
        AdaptivePolicy {
            error_bound,
            ranks: ranks.max(1),
            absmax: Vec::new(),
            decisions: Vec::new(),
            stats: PolicyStats::default(),
        }
    }

    /// The configured error bound.
    pub fn error_bound(&self) -> f32 {
        self.error_bound
    }

    /// Decision counts accumulated so far.
    pub fn stats(&self) -> PolicyStats {
        self.stats
    }

    /// Bytes held by the policy's reused buffers (for the trainer's
    /// steady-state scratch accounting).
    pub fn scratch_bytes(&self) -> usize {
        self.absmax.capacity() * std::mem::size_of::<Option<f32>>()
            + self.decisions.capacity() * std::mem::size_of::<WirePrecision>()
    }

    /// Quantization passes an element may cross in the wire allreduce (and
    /// the standalone reduce-scatter, which requantizes its final chunk).
    fn passes(&self) -> f32 {
        (self.ranks + 1) as f32
    }

    /// Picks the wire for one bucket from its running envelope. Pure in
    /// `(error_bound, ranks, envelope)` — identical on every rank.
    fn decide_one(&self, envelope: Option<f32>) -> WirePrecision {
        let Some(a) = envelope else {
            return WirePrecision::Fp32; // cold: no evidence yet
        };
        if !(a.is_finite() && a > 0.0) {
            return WirePrecision::Fp32; // degenerate envelope
        }
        let scale = HEADROOM * a / INT8_LEVELS;
        if scale > 0.0
            && scale.is_finite()
            && scale.recip().is_finite()
            && self.passes() * scale * 0.5 <= self.error_bound
        {
            return WirePrecision::int8_shared(scale);
        }
        if self.passes() * HEADROOM * a * BF16_REL_ERR <= self.error_bound {
            return WirePrecision::Bf16;
        }
        WirePrecision::Fp32
    }

    /// Per-bucket wire choices for a plan of `num_buckets` buckets, in plan
    /// (issue) order. The returned slice is a reused internal buffer.
    pub fn decide(&mut self, num_buckets: usize) -> &[WirePrecision] {
        self.absmax.resize(num_buckets, None);
        self.decisions.clear();
        for idx in 0..num_buckets {
            let wire = self.decide_one(self.absmax[idx]);
            match wire {
                WirePrecision::Fp32 => self.stats.fp32 += 1,
                WirePrecision::Bf16 => self.stats.bf16 += 1,
                _ => self.stats.int8 += 1,
            }
            self.decisions.push(wire);
        }
        &self.decisions
    }

    /// Folds one bucket's observed (reduced) gradient magnitudes into its
    /// envelope: instant attack, geometric release.
    fn observe(&mut self, idx: usize, data: &[f32]) {
        if idx >= self.absmax.len() {
            self.absmax.resize(idx + 1, None);
        }
        let mut m = 0.0f32;
        for &x in data {
            let a = x.abs();
            if a.is_finite() && a > m {
                m = a;
            }
        }
        self.absmax[idx] = Some(match self.absmax[idx] {
            Some(old) => m.max(ABSMAX_DECAY * old),
            None => m,
        });
    }

    /// Observes the reduced flat gradient, splitting it into buckets exactly
    /// as [`crate::bucketing::BucketPlan::for_bytes`] does (reverse flat
    /// order under the same byte cap). Alloc-free.
    pub fn observe_flat(&mut self, flat: &[f32], cap_bytes: usize) {
        let elems = (cap_bytes / std::mem::size_of::<f32>()).max(1);
        let mut end = flat.len();
        let mut idx = 0;
        while end > 0 {
            let start = end.saturating_sub(elems);
            self.observe(idx, &flat[start..end]);
            end = start;
            idx += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_buckets_ship_fp32() {
        let mut p = AdaptivePolicy::new(0.05, 4);
        assert_eq!(p.decide(3), &[WirePrecision::Fp32; 3]);
        assert_eq!(p.stats().fp32, 3);
        assert_eq!(p.stats().int8, 0);
    }

    #[test]
    fn small_gradients_earn_int8_with_the_predicted_scale() {
        let mut p = AdaptivePolicy::new(0.05, 4);
        p.observe_flat(&[0.3, -0.5, 0.1, 0.2], 8); // two 2-elem buckets
        let d = p.decide(2).to_vec();
        // Plan order is reverse flat order: bucket 0 = [0.1, 0.2] → absmax
        // 0.2; bucket 1 = [0.3, -0.5] → absmax 0.5.
        let s0 = HEADROOM * 0.2 / INT8_LEVELS;
        let s1 = HEADROOM * 0.5 / INT8_LEVELS;
        assert_eq!(d[0], WirePrecision::int8_shared(s0));
        assert_eq!(d[1], WirePrecision::int8_shared(s1));
        // And the admission inequality actually holds for both.
        for s in [s0, s1] {
            assert!(5.0 * s * 0.5 <= 0.05);
        }
        assert_eq!(p.stats().int8, 2);
    }

    #[test]
    fn tiers_degrade_as_magnitudes_grow() {
        // bound 0.05, R=4 → INT8 admits absmax ≤ 0.05·127/(5·1·2/2) = 1.27;
        // BF16 admits absmax ≤ 0.05·256/(5·2) = 1.28 — so pick magnitudes
        // well separated across the two cutoffs.
        let mut p = AdaptivePolicy::new(0.05, 4);
        p.observe(0, &[0.5]); // comfortably INT8
        p.observe(1, &[1.275]); // past INT8, inside BF16
        p.observe(2, &[1000.0]); // past everything
        let d = p.decide(3).to_vec();
        assert!(matches!(d[0], WirePrecision::Int8Shared { .. }));
        assert_eq!(d[1], WirePrecision::Bf16);
        assert_eq!(d[2], WirePrecision::Fp32);
        let st = p.stats();
        assert_eq!((st.fp32, st.bf16, st.int8), (1, 1, 1));
        assert_eq!(st.total(), 3);
    }

    #[test]
    fn envelope_attacks_instantly_and_releases_geometrically() {
        let mut p = AdaptivePolicy::new(0.05, 4);
        p.observe(0, &[0.1]);
        assert_eq!(p.absmax[0], Some(0.1));
        p.observe(0, &[0.8]); // instant attack
        assert_eq!(p.absmax[0], Some(0.8));
        p.observe(0, &[0.0]); // halving release, not collapse
        assert_eq!(p.absmax[0], Some(0.4));
    }

    #[test]
    fn zero_and_nonfinite_observations_stay_fp32() {
        let mut p = AdaptivePolicy::new(0.05, 4);
        p.observe(0, &[0.0, -0.0]);
        p.observe(1, &[f32::NAN, f32::INFINITY]);
        let d = p.decide(2).to_vec();
        // Bucket 0's envelope is exactly 0 → degenerate → FP32. Bucket 1
        // ignores non-finite values entirely → envelope 0 → FP32.
        assert_eq!(d, vec![WirePrecision::Fp32; 2]);
    }

    #[test]
    fn observe_flat_matches_bucket_plan_split() {
        use crate::bucketing::BucketPlan;
        let flat: Vec<f32> = (0..10).map(|i| i as f32 + 1.0).collect();
        let cap = 16; // 4 elems → plan [6..10, 2..6, 0..2]
        let plan = BucketPlan::for_bytes(flat.len(), cap);
        let mut p = AdaptivePolicy::new(1.0, 2);
        p.observe_flat(&flat, cap);
        assert_eq!(p.absmax.len(), plan.len());
        for (idx, range) in plan.buckets.iter().enumerate() {
            let want = flat[range.clone()].iter().fold(0.0f32, |m, x| m.max(*x));
            assert_eq!(p.absmax[idx], Some(want), "bucket {idx}");
        }
    }

    #[test]
    fn decisions_are_pure_in_the_envelope() {
        // Two policies fed identical observations (as on two ranks seeing
        // the same bitwise-identical reduced gradient) decide identically —
        // compared by bits, since Int8Shared carries the scale.
        let obs: Vec<f32> = (0..32).map(|i| ((i * 37 % 11) as f32) * 1e-3).collect();
        let mut a = AdaptivePolicy::new(0.02, 8);
        let mut b = AdaptivePolicy::new(0.02, 8);
        for p in [&mut a, &mut b] {
            p.observe_flat(&obs, 40);
            p.observe_flat(&obs, 40);
        }
        assert_eq!(a.decide(4), b.decide(4));
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn rejects_nonpositive_bound() {
        let _ = AdaptivePolicy::new(0.0, 4);
    }
}
