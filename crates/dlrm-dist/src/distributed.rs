//! The hybrid-parallel distributed DLRM trainer.
//!
//! # The overlapped schedule
//!
//! [`Schedule::Overlapped`] restructures the train step around split-phase
//! collectives so communication runs *behind* compute, the optimization at
//! the heart of the paper's Figures 6/10/11:
//!
//! * the embedding-output alltoall is begun right after the table lookups
//!   and finished only when the interaction needs the slices — the bottom
//!   MLP forward runs while it is in flight;
//! * the MLP-gradient allreduce is bucketed ([`crate::bucketing`]) and each
//!   bucket is issued the moment backward has produced its layers, so the
//!   reduction of the top MLP's gradients overlaps the interaction/bottom
//!   backward and the embedding update;
//! * the embedding-gradient alltoall is begun before the bottom backward
//!   and finished just before the sparse update needs it.
//!
//! [`Schedule::Synchronous`] runs the *same* packing, the *same* bucket
//! plan and the *same* per-bucket ring reductions, just back to back —
//! which is why the two schedules produce bitwise-identical losses (the
//! `schedule_equivalence` suite proves it, including under chaos plans).
//! Overlap moves time, never bits.

use crate::bucketing::{BucketReducer, DEFAULT_BUCKET_CAP_BYTES};
use crate::ddp::{averaged_sgd_step, grad_offsets, unflatten_grads};
use crate::exchange::{
    begin_backward_exchange, begin_forward_exchange, ensure_mats, finish_backward_exchange,
    finish_forward_exchange, tables_of, ExchangeStrategy,
};
use crate::prefetch::{Prefetch, PrefetchState};
use crate::wirepolicy::{AdaptivePolicy, PolicyStats};
use dlrm::embedding_layer::EmbeddingLayer;
use dlrm::interaction::Interaction;
use dlrm::layers::{Activation, Execution, Mlp};
use dlrm::model::DlrmModel;
use dlrm_comm::chaos::FaultPlan;
use dlrm_comm::instrument::{time_opt, OpKind, TimingRecorder};
use dlrm_comm::nonblocking::{create_channel_worlds_with_chaos, Backend, ProgressEngine};
use dlrm_comm::wire::WirePrecision;
use dlrm_comm::world::{CommWorld, Communicator};
use dlrm_data::{DlrmConfig, LookaheadWindow, MiniBatch};
use dlrm_kernels::embedding::UpdateStrategy;
use dlrm_kernels::loss::{bce_with_logits_backward, bce_with_logits_loss};
use dlrm_tensor::init::seeded_rng;
use dlrm_tensor::Matrix;
use std::sync::Arc;

/// How the train step orders compute against communication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Every collective completes before the next compute op (the naive
    /// baseline; kept for equivalence tests and as the bench contrast).
    Synchronous,
    /// Split-phase collectives hidden behind independent compute.
    Overlapped,
}

impl std::fmt::Display for Schedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Schedule::Synchronous => "synchronous",
            Schedule::Overlapped => "overlapped",
        })
    }
}

/// Half the machine per rank (the paper runs one rank per socket), at
/// least 1 and no runaway on huge hosts.
fn default_threads_per_rank() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .div_ceil(2)
        .clamp(1, 8)
}

/// Wire mode of the bucketed gradient allreduce: one fixed precision for
/// every bucket, or the error-bounded adaptive policy.
#[derive(Debug, Clone, Copy)]
pub enum AllreduceWire {
    /// Every bucket ships with this precision.
    Fixed(WirePrecision),
    /// Per-bucket FP32/BF16/shared-scale-INT8 chosen each step by
    /// [`AdaptivePolicy`] from running statistics of the (rank-identical)
    /// reduced gradients, keeping the worst-case quantization error per
    /// reduced element within `error_bound`. Decisions are pure functions
    /// of replicated state, so every rank picks the same wires with zero
    /// metadata traffic.
    Adaptive {
        /// Absolute per-element error budget for the reduced gradients.
        error_bound: f32,
    },
}

impl PartialEq for AllreduceWire {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (AllreduceWire::Fixed(a), AllreduceWire::Fixed(b)) => a == b,
            // Bit comparison keeps `Eq` honest (no NaN partiality) and is
            // exactly the determinism contract: same bits, same policy.
            (
                AllreduceWire::Adaptive { error_bound: a },
                AllreduceWire::Adaptive { error_bound: b },
            ) => a.to_bits() == b.to_bits(),
            _ => false,
        }
    }
}

impl Eq for AllreduceWire {}

impl Default for AllreduceWire {
    fn default() -> Self {
        AllreduceWire::Fixed(WirePrecision::Fp32)
    }
}

/// Per-collective wire precision for the train step's data plane.
///
/// The three hot collectives are independently selectable so experiments
/// can isolate where the volume (and the rounding) goes: the forward
/// embedding alltoall ships activations, the backward alltoall ships
/// embedding gradients, and the bucketed allreduce ships MLP gradients
/// (fixed precision or the adaptive policy — see [`AllreduceWire`]).
/// [`WireConfig::all`] sets every knob at once; the default is FP32
/// everywhere (bitwise-identical to the pre-wire trainer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireConfig {
    /// Wire format of the embedding-output (forward) alltoall.
    pub forward_alltoall: WirePrecision,
    /// Wire format of the embedding-gradient (backward) alltoall.
    pub backward_alltoall: WirePrecision,
    /// Wire mode of the bucketed MLP-gradient allreduce.
    pub allreduce: AllreduceWire,
}

impl WireConfig {
    /// The same precision on every collective.
    pub fn all(p: WirePrecision) -> Self {
        WireConfig {
            forward_alltoall: p,
            backward_alltoall: p,
            allreduce: AllreduceWire::Fixed(p),
        }
    }
}

/// Options for constructing a distributed trainer.
#[derive(Clone)]
pub struct DistOptions {
    /// Embedding-exchange strategy.
    pub strategy: ExchangeStrategy,
    /// Embedding update strategy on each rank.
    pub update: UpdateStrategy,
    /// Worker threads per rank's compute pool.
    pub threads_per_rank: usize,
    /// Model seed — must match the single-process model for equivalence.
    pub seed: u64,
    /// Compute/communication ordering.
    pub schedule: Schedule,
    /// Gradient-allreduce bucket cap in bytes (DDP `bucket_cap_mb`).
    pub bucket_cap_bytes: usize,
    /// Per-collective on-wire element format.
    pub wire: WireConfig,
    /// Lookahead prefetch + dedup for the embedding data plane. `Off`
    /// (the default) keeps the trainer byte-for-byte on the pooled
    /// forward-exchange path.
    pub prefetch: Prefetch,
}

impl Default for DistOptions {
    fn default() -> Self {
        DistOptions {
            strategy: ExchangeStrategy::Alltoall,
            update: UpdateStrategy::RaceFree,
            threads_per_rank: default_threads_per_rank(),
            seed: 0,
            schedule: Schedule::Overlapped,
            bucket_cap_bytes: DEFAULT_BUCKET_CAP_BYTES,
            wire: WireConfig::default(),
            prefetch: Prefetch::Off,
        }
    }
}

/// One rank of a hybrid-parallel DLRM.
///
/// MLPs are replicated (data parallel); this rank additionally owns the
/// embedding tables `t ≡ rank (mod nranks)` (model parallel).
pub struct DistDlrm {
    /// The model configuration.
    pub cfg: DlrmConfig,
    comm: Communicator,
    engine: Option<ProgressEngine>,
    exec: Execution,
    /// Replicated bottom MLP.
    pub bottom: Mlp,
    /// Replicated top MLP.
    pub top: Mlp,
    /// `(global_table_index, layer)` for each owned table.
    pub local_tables: Vec<(usize, EmbeddingLayer)>,
    interaction: Interaction,
    strategy: ExchangeStrategy,
    schedule: Schedule,
    bucket_cap_bytes: usize,
    wire: WireConfig,
    /// Flat offset of each layer's gradients: `[bottom, top]`.
    grad_offs: Vec<Vec<usize>>,
    grad_total: usize,
    recorder: Option<Arc<TimingRecorder>>,
    // Iteration-persistent scratch (reused, never regrown after step 1).
    fwd_slices: Vec<Matrix>,
    bwd_grads: Vec<Matrix>,
    flat_grads: Vec<f32>,
    dlogits: Vec<f32>,
    /// Lookahead pipeline state (`Some` iff prefetch is enabled).
    prefetch: Option<PrefetchState>,
    /// Adaptive allreduce-wire policy (`Some` iff the allreduce wire is
    /// [`AllreduceWire::Adaptive`]).
    wire_policy: Option<AdaptivePolicy>,
}

impl DistDlrm {
    /// Builds this rank's share of the model. Weights are seeded per
    /// component so they agree bit-for-bit with [`DlrmModel::new`] under
    /// the same seed.
    pub fn new(
        cfg: &DlrmConfig,
        comm: Communicator,
        engine: Option<ProgressEngine>,
        opts: &DistOptions,
    ) -> Self {
        assert!(
            comm.nranks() <= cfg.max_ranks(),
            "at most one rank per embedding table"
        );
        let bottom = Mlp::new(
            cfg.dense_features,
            &cfg.bottom_mlp,
            Activation::Relu,
            &mut seeded_rng(opts.seed, DlrmModel::BOTTOM_STREAM),
        );
        let top = Mlp::new(
            cfg.interaction_output_dim(),
            &cfg.top_mlp,
            Activation::None,
            &mut seeded_rng(opts.seed, DlrmModel::TOP_STREAM),
        );
        let local_tables: Vec<(usize, EmbeddingLayer)> =
            tables_of(cfg.num_tables, comm.nranks(), comm.rank())
                .into_iter()
                .map(|t| (t, DlrmModel::build_table(cfg, t, opts.update, opts.seed)))
                .collect();
        let (grad_offs, grad_total) = grad_offsets(&[&bottom, &top]);
        let prefetch = match opts.prefetch {
            Prefetch::Off => None,
            Prefetch::Lookahead { window } => {
                // Bitwise equivalence with the naive step needs canonical
                // bytes on the fetch wire and dest/owner agreement on every
                // applied gradient — see `crate::prefetch`.
                assert_eq!(
                    opts.wire.forward_alltoall,
                    WirePrecision::Fp32,
                    "prefetch requires an FP32 forward wire: cached rows must be canonical bytes"
                );
                assert_eq!(
                    opts.wire.backward_alltoall,
                    WirePrecision::Fp32,
                    "prefetch requires an FP32 backward wire: dest and owner must apply identical gradients"
                );
                assert!(
                    matches!(
                        opts.update,
                        UpdateStrategy::Reference
                            | UpdateStrategy::RaceFree
                            | UpdateStrategy::Bucketed
                    ),
                    "prefetch requires a per-row-deterministic update strategy, got {}",
                    opts.update
                );
                Some(PrefetchState::new(cfg, comm.nranks(), comm.rank(), window))
            }
        };
        let wire_policy = match opts.wire.allreduce {
            AllreduceWire::Fixed(_) => None,
            AllreduceWire::Adaptive { error_bound } => {
                Some(AdaptivePolicy::new(error_bound, comm.nranks()))
            }
        };
        DistDlrm {
            cfg: cfg.clone(),
            comm,
            engine,
            exec: Execution::optimized(opts.threads_per_rank),
            bottom,
            top,
            local_tables,
            interaction: Interaction::new(cfg.emb_dim),
            strategy: opts.strategy,
            schedule: opts.schedule,
            bucket_cap_bytes: opts.bucket_cap_bytes,
            wire: opts.wire,
            grad_offs,
            grad_total,
            recorder: None,
            fwd_slices: Vec::new(),
            bwd_grads: Vec::new(),
            flat_grads: Vec::new(),
            dlogits: Vec::new(),
            prefetch,
            wire_policy,
        }
    }

    /// Builds one step's bucket reducer: fixed wire straight from the
    /// config, or the adaptive policy's fresh per-bucket decisions. Takes
    /// fields (not `&mut self`) so the train steps can call it while the
    /// engine/recorder borrows are live.
    fn build_reducer(
        flat_grads: &mut Vec<f32>,
        grad_total: usize,
        cap_bytes: usize,
        allreduce: AllreduceWire,
        policy: &mut Option<AdaptivePolicy>,
    ) -> BucketReducer {
        let reducer = BucketReducer::new(std::mem::take(flat_grads), grad_total, cap_bytes);
        match allreduce {
            AllreduceWire::Fixed(p) => reducer.with_wire(p),
            AllreduceWire::Adaptive { .. } => {
                let policy = policy
                    .as_mut()
                    .expect("adaptive allreduce wire implies a policy");
                let wires = policy.decide(reducer.num_buckets()).to_vec();
                reducer.with_bucket_wires(wires)
            }
        }
    }

    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    /// World size.
    pub fn nranks(&self) -> usize {
        self.comm.nranks()
    }

    /// The active schedule.
    pub fn schedule(&self) -> Schedule {
        self.schedule
    }

    /// The active per-collective wire configuration.
    pub fn wire(&self) -> WireConfig {
        self.wire
    }

    /// Decision counts of the adaptive allreduce-wire policy (`None` under
    /// a fixed wire) — how many buckets shipped FP32/BF16/INT8 so far.
    pub fn wire_policy_stats(&self) -> Option<PolicyStats> {
        self.wire_policy.as_ref().map(|p| p.stats())
    }

    /// Barrier over the trainer's communicator (bench/test sync points).
    pub fn comm_barrier(&self) {
        self.comm.barrier();
    }

    /// Attaches (or detaches) a per-rank timing recorder. Compute,
    /// Alltoall-Wait and Allreduce-Wait are charged per [`OpKind`].
    pub fn set_recorder(&mut self, rec: Option<Arc<TimingRecorder>>) {
        self.recorder = rec;
    }

    /// Bytes currently held by the iteration-persistent scratch buffers —
    /// the allocation-growth test asserts this stabilizes after step 1.
    pub fn scratch_bytes(&self) -> usize {
        let mats: usize = self
            .fwd_slices
            .iter()
            .chain(&self.bwd_grads)
            .map(|m| std::mem::size_of_val(m.as_slice()))
            .sum();
        mats + (self.flat_grads.capacity() + self.dlogits.capacity()) * std::mem::size_of::<f32>()
            + self.prefetch.as_ref().map_or(0, |p| p.scratch_bytes())
            + self.wire_policy.as_ref().map_or(0, |p| p.scratch_bytes())
            + self.bottom.scratch_bytes()
            + self.top.scratch_bytes()
    }

    /// Copies any blocked-SGD updates back into the flat `w` mirrors of
    /// the replicated MLPs. Required before fingerprinting or
    /// checkpointing `layer.w` after training (the optimized step updates
    /// the persistent packed weights in place and leaves the mirror
    /// stale).
    pub fn sync_flat_weights(&mut self) {
        self.bottom.sync_flat_weights();
        self.top.sync_flat_weights();
    }

    /// One hybrid-parallel training iteration over a *global* minibatch
    /// (every rank passes the same batch; each processes its slice).
    /// Returns this rank's local loss.
    ///
    /// Both schedules execute the identical packing, collectives and
    /// arithmetic; [`Schedule::Overlapped`] only moves the `finish` halves
    /// later and the bucket issues earlier.
    pub fn train_step(&mut self, global: &MiniBatch, lr: f32) -> f64 {
        let r = self.nranks();
        let gn = global.batch_size();
        assert_eq!(gn % r, 0, "global minibatch must divide by ranks");
        let n = gn / r;
        let me = self.rank();
        let exec = self.exec.clone();
        let e = self.cfg.emb_dim;
        let overlapped = self.schedule == Schedule::Overlapped;
        let rec_arc = self.recorder.clone();
        let rec = rec_arc.as_deref();

        // --- forward ------------------------------------------------------
        let local = global.slice(me * n, (me + 1) * n);

        // Model-parallel embedding forward over the full global batch.
        let local_outs: Vec<Matrix> = time_opt(rec, OpKind::Compute, || {
            self.local_tables
                .iter_mut()
                .map(|(t, layer)| layer.forward(&exec, &global.indices[*t], &global.offsets[*t]))
                .collect()
        });

        // Model-parallel -> data-parallel switch, split-phase: in flight
        // (or packed) across the bottom MLP forward.
        let engine = self.engine.as_ref();
        let mut pending_fwd = Some(begin_forward_exchange(
            self.strategy,
            &self.comm,
            engine,
            &local_outs,
            self.cfg.num_tables,
            n,
            e,
            self.wire.forward_alltoall,
            rec,
        ));
        if !overlapped {
            finish_forward_exchange(
                pending_fwd.take().unwrap(),
                &self.comm,
                &mut self.fwd_slices,
                rec,
            );
        }

        let z0 = time_opt(rec, OpKind::Compute, || {
            self.bottom.forward(&exec, &local.dense)
        });

        if let Some(p) = pending_fwd.take() {
            finish_forward_exchange(p, &self.comm, &mut self.fwd_slices, rec);
        }

        let logits_m = time_opt(rec, OpKind::Compute, || {
            let inter = self.interaction.forward(&exec, &z0, &self.fwd_slices);
            self.top.forward(&exec, &inter)
        });
        let logits = logits_m.as_slice();
        let loss = bce_with_logits_loss(logits, &local.labels);

        // --- backward -----------------------------------------------------
        self.dlogits.resize(n, 0.0);
        bce_with_logits_backward(logits, &local.labels, &mut self.dlogits);
        let dy_top = Matrix::from_slice(1, n, &self.dlogits);

        // The bucketed allreduce: overlapped issues each bucket as backward
        // produces its layers; synchronous writes/issues everything after
        // the bottom backward. Identical plan either way.
        let mut reducer = Self::build_reducer(
            &mut self.flat_grads,
            self.grad_total,
            self.bucket_cap_bytes,
            self.wire.allreduce,
            &mut self.wire_policy,
        );

        let d_inter = if overlapped {
            let offs = &self.grad_offs[1];
            let red = &mut reducer;
            time_opt(rec, OpKind::Compute, || {
                self.top.backward_with(&exec, dy_top, |i, layer| {
                    let off = offs[i];
                    red.write(off, layer.dw.as_slice());
                    red.write(off + layer.dw.as_slice().len(), &layer.db);
                    red.on_produced(off, engine, None);
                })
            })
        } else {
            time_opt(rec, OpKind::Compute, || self.top.backward(&exec, dy_top))
        };

        let (d_bottom, d_tables) =
            time_opt(rec, OpKind::Compute, || self.interaction.backward(&d_inter));

        // Data-parallel -> model-parallel switch for embedding gradients,
        // in flight (or packed) across the bottom MLP backward.
        let mut pending_bwd = Some(begin_backward_exchange(
            self.strategy,
            &self.comm,
            engine,
            &d_tables,
            self.cfg.num_tables,
            n,
            e,
            self.wire.backward_alltoall,
            rec,
        ));
        if !overlapped {
            finish_backward_exchange(
                pending_bwd.take().unwrap(),
                &self.comm,
                &mut self.bwd_grads,
                rec,
            );
        }

        if overlapped {
            let offs = &self.grad_offs[0];
            let red = &mut reducer;
            time_opt(rec, OpKind::Compute, || {
                self.bottom.backward_with(&exec, d_bottom, |i, layer| {
                    let off = offs[i];
                    red.write(off, layer.dw.as_slice());
                    red.write(off + layer.dw.as_slice().len(), &layer.db);
                    red.on_produced(off, engine, None);
                });
            });
        } else {
            time_opt(rec, OpKind::Compute, || {
                let _ = self.bottom.backward(&exec, d_bottom);
            });
        }

        if let Some(p) = pending_bwd.take() {
            finish_backward_exchange(p, &self.comm, &mut self.bwd_grads, rec);
        }

        // Local gradients are means over n = GN/R samples; dividing the
        // learning rate by R makes the sparse update a global-batch mean.
        let emb_lr = lr / r as f32;
        time_opt(rec, OpKind::Compute, || {
            for ((_, layer), grad) in self.local_tables.iter_mut().zip(&self.bwd_grads) {
                layer.backward_update(&exec, grad, emb_lr);
            }
        });

        // Synchronous: fill the flat buffer now (same offsets, same plan).
        if !overlapped {
            time_opt(rec, OpKind::AllreduceFramework, || {
                for (m, mlp) in [&self.bottom, &self.top].into_iter().enumerate() {
                    for (i, layer) in mlp.layers.iter().enumerate() {
                        let off = self.grad_offs[m][i];
                        reducer.write(off, layer.dw.as_slice());
                        reducer.write(off + layer.dw.as_slice().len(), &layer.db);
                    }
                }
            });
            reducer.on_produced(0, engine, rec);
        }

        // DDP: complete the summed-gradient reduction, apply the averaged
        // step.
        let flat = reducer.finalize(&self.comm, engine, rec);
        unflatten_grads(&flat, &mut [&mut self.bottom, &mut self.top]);
        // The reduced flat gradient is bitwise rank-identical — feeding it
        // into the policy keeps every rank's next-step decisions identical.
        if let Some(policy) = self.wire_policy.as_mut() {
            policy.observe_flat(&flat, self.bucket_cap_bytes);
        }
        self.flat_grads = flat;
        time_opt(rec, OpKind::Compute, || {
            averaged_sgd_step(&mut self.bottom, lr, r);
            averaged_sgd_step(&mut self.top, lr, r);
        });

        loss
    }

    /// One lookahead-pipelined training iteration (requires
    /// [`Prefetch::Lookahead`] in the construction options). `win.current()`
    /// is this step's global batch; the window is the shared deterministic
    /// view every rank derives bit-identical fetch plans from. The caller
    /// advances the window between steps.
    ///
    /// Bitwise-identical to [`DistDlrm::train_step`] over the same stream:
    /// the pooled table slices are reproduced locally from cached unique
    /// rows in the naive accumulate order, and everything from the bottom
    /// MLP down — backward, gradient exchanges, owner updates, bucketed
    /// allreduce — is the unchanged code path (`tests/prefetch_equivalence`
    /// asserts losses *and all parameter planes*). What changes is the
    /// wire: each unique row crosses once per residency instead of `n·E`
    /// pooled floats per step, and next-step rows fly behind backward
    /// compute.
    pub fn train_step_lookahead(&mut self, win: &LookaheadWindow<'_>, lr: f32) -> f64 {
        let mut ps = self
            .prefetch
            .take()
            .expect("prefetch not enabled; construct with Prefetch::Lookahead");
        let loss = self.lookahead_step(&mut ps, win, lr);
        self.prefetch = Some(ps);
        loss
    }

    fn lookahead_step(
        &mut self,
        ps: &mut PrefetchState,
        win: &LookaheadWindow<'_>,
        lr: f32,
    ) -> f64 {
        let r = self.nranks();
        let global = win.current();
        let gn = global.batch_size();
        assert_eq!(gn % r, 0, "global minibatch must divide by ranks");
        let n = gn / r;
        let me = self.rank();
        let exec = self.exec.clone();
        let e = self.cfg.emb_dim;
        let overlapped = self.schedule == Schedule::Overlapped;
        let rec_arc = self.recorder.clone();
        let rec = rec_arc.as_deref();
        assert_eq!(win.pos(), ps.step() as usize, "window cursor out of sync");
        let j = ps.step();

        // --- forward ------------------------------------------------------
        let local = global.slice(me * n, (me + 1) * n);
        let engine = self.engine.as_ref();

        // Lookahead front end: fold newly visible batches into the need
        // horizon, land the early fetch issued last step, fill the gaps
        // with a late fetch, then record this batch's touches.
        ps.observe_visible(win, n);
        ps.land_early_fetch(r, e, rec);
        ps.late_fetch(
            j,
            global,
            me,
            r,
            n,
            &self.local_tables,
            &self.comm,
            self.wire.forward_alltoall,
            rec,
        );
        ps.record_touches(j, global, n);

        // Local fan-out replaces the pooled forward alltoall: every table's
        // slice is pooled from cached rows in the naive accumulate order.
        ensure_mats(&mut self.fwd_slices, self.cfg.num_tables, n, e);
        time_opt(rec, OpKind::Compute, || {
            ps.pool_forward(global, me, n, &mut self.fwd_slices)
        });

        let z0 = time_opt(rec, OpKind::Compute, || {
            self.bottom.forward(&exec, &local.dense)
        });
        let logits_m = time_opt(rec, OpKind::Compute, || {
            let inter = self.interaction.forward(&exec, &z0, &self.fwd_slices);
            self.top.forward(&exec, &inter)
        });
        let logits = logits_m.as_slice();
        let loss = bce_with_logits_loss(logits, &local.labels);

        // --- backward -----------------------------------------------------
        self.dlogits.resize(n, 0.0);
        bce_with_logits_backward(logits, &local.labels, &mut self.dlogits);
        let dy_top = Matrix::from_slice(1, n, &self.dlogits);

        let mut reducer = Self::build_reducer(
            &mut self.flat_grads,
            self.grad_total,
            self.bucket_cap_bytes,
            self.wire.allreduce,
            &mut self.wire_policy,
        );

        // Early fetch of batch j+1's rows, issued on the exchange channel
        // before the backward alltoall so it flies behind the backward
        // compute below (channel FIFO order is identical on all ranks:
        // late(j), early(j+1), backward(j)).
        ps.issue_early_fetch(
            j,
            win,
            me,
            r,
            n,
            &self.local_tables,
            &self.comm,
            engine,
            self.wire.forward_alltoall,
            rec,
        );

        let d_inter = if overlapped {
            let offs = &self.grad_offs[1];
            let red = &mut reducer;
            time_opt(rec, OpKind::Compute, || {
                self.top.backward_with(&exec, dy_top, |i, layer| {
                    let off = offs[i];
                    red.write(off, layer.dw.as_slice());
                    red.write(off + layer.dw.as_slice().len(), &layer.db);
                    red.on_produced(off, engine, None);
                })
            })
        } else {
            time_opt(rec, OpKind::Compute, || self.top.backward(&exec, dy_top))
        };

        let (d_bottom, d_tables) =
            time_opt(rec, OpKind::Compute, || self.interaction.backward(&d_inter));

        let mut pending_bwd = Some(begin_backward_exchange(
            self.strategy,
            &self.comm,
            engine,
            &d_tables,
            self.cfg.num_tables,
            n,
            e,
            self.wire.backward_alltoall,
            rec,
        ));
        if !overlapped {
            finish_backward_exchange(
                pending_bwd.take().unwrap(),
                &self.comm,
                &mut self.bwd_grads,
                rec,
            );
        }

        if overlapped {
            let offs = &self.grad_offs[0];
            let red = &mut reducer;
            time_opt(rec, OpKind::Compute, || {
                self.bottom.backward_with(&exec, d_bottom, |i, layer| {
                    let off = offs[i];
                    red.write(off, layer.dw.as_slice());
                    red.write(off + layer.dw.as_slice().len(), &layer.db);
                    red.on_produced(off, engine, None);
                });
            });
        } else {
            time_opt(rec, OpKind::Compute, || {
                let _ = self.bottom.backward(&exec, d_bottom);
            });
        }

        if let Some(p) = pending_bwd.take() {
            finish_backward_exchange(p, &self.comm, &mut self.bwd_grads, rec);
        }

        // Owner canonical update (the forward never ran here, so record the
        // batch first) plus the delayed local update of cached rows.
        let emb_lr = lr / r as f32;
        time_opt(rec, OpKind::Compute, || {
            for ((t, layer), grad) in self.local_tables.iter_mut().zip(&self.bwd_grads) {
                layer.set_saved_batch(&global.indices[*t], &global.offsets[*t]);
                layer.backward_update(&exec, grad, emb_lr);
            }
            ps.apply_local_updates(global, me, n, &d_tables, emb_lr);
        });

        if !overlapped {
            time_opt(rec, OpKind::AllreduceFramework, || {
                for (m, mlp) in [&self.bottom, &self.top].into_iter().enumerate() {
                    for (i, layer) in mlp.layers.iter().enumerate() {
                        let off = self.grad_offs[m][i];
                        reducer.write(off, layer.dw.as_slice());
                        reducer.write(off + layer.dw.as_slice().len(), &layer.db);
                    }
                }
            });
            reducer.on_produced(0, engine, rec);
        }

        let flat = reducer.finalize(&self.comm, engine, rec);
        unflatten_grads(&flat, &mut [&mut self.bottom, &mut self.top]);
        // The reduced flat gradient is bitwise rank-identical — feeding it
        // into the policy keeps every rank's next-step decisions identical.
        if let Some(policy) = self.wire_policy.as_mut() {
            policy.observe_flat(&flat, self.bucket_cap_bytes);
        }
        self.flat_grads = flat;
        time_opt(rec, OpKind::Compute, || {
            averaged_sgd_step(&mut self.bottom, lr, r);
            averaged_sgd_step(&mut self.top, lr, r);
        });

        ps.finish_step(j);
        loss
    }
}

/// Convenience driver: trains `nranks` thread-ranks for the given global
/// batches and returns each rank's loss trajectory (rank-major).
pub fn run_training(
    cfg: &DlrmConfig,
    nranks: usize,
    opts: &DistOptions,
    batches: &[MiniBatch],
    lr: f32,
) -> Vec<Vec<f64>> {
    run_training_with_chaos(cfg, nranks, opts, batches, lr, None)
}

/// [`run_training`] over a chaotic transport: the same fault plan is
/// threaded through the blocking world *and* the progress-engine channel
/// worlds. With `plan = None` this is exactly `run_training`; with a plan,
/// losses must still be bitwise identical — the chaos test suite checks
/// precisely that.
///
/// A progress engine is created when the strategy needs one
/// ([`CclAlltoall`]) or when the overlapped schedule wants channels for
/// its in-flight gradient buckets.
///
/// [`CclAlltoall`]: ExchangeStrategy::CclAlltoall
pub fn run_training_with_chaos(
    cfg: &DlrmConfig,
    nranks: usize,
    opts: &DistOptions,
    batches: &[MiniBatch],
    lr: f32,
    plan: Option<Arc<FaultPlan>>,
) -> Vec<Vec<f64>> {
    let backend = Backend::CclLike { workers: 2 };
    let wants_engine =
        opts.strategy == ExchangeStrategy::CclAlltoall || opts.schedule == Schedule::Overlapped;
    let engines = if wants_engine {
        Some(std::sync::Mutex::new(create_channel_worlds_with_chaos(
            nranks,
            backend,
            plan.clone(),
        )))
    } else {
        None
    };
    CommWorld::run_with_chaos(nranks, plan.clone(), |comm| {
        let engine = engines.as_ref().map(|m| {
            let comms = std::mem::take(&mut m.lock().unwrap()[comm.rank()]);
            ProgressEngine::new_with_chaos(backend, comms, plan.clone())
        });
        let mut rank_model = DistDlrm::new(cfg, comm, engine, opts);
        match opts.prefetch {
            Prefetch::Off => batches
                .iter()
                .map(|b| rank_model.train_step(b, lr))
                .collect(),
            Prefetch::Lookahead { window } => {
                let mut win = LookaheadWindow::new(batches, window);
                let mut losses = Vec::with_capacity(batches.len());
                while !win.is_finished() {
                    losses.push(rank_model.train_step_lookahead(&win, lr));
                    win.advance();
                }
                losses
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrm::precision::PrecisionMode;
    use dlrm_data::IndexDistribution;

    fn tiny_cfg() -> DlrmConfig {
        let mut cfg = DlrmConfig::small().scaled_down(32, 512);
        cfg.dense_features = 6;
        cfg.bottom_mlp = vec![8, 4];
        cfg.emb_dim = 4;
        cfg.num_tables = 4;
        cfg.table_rows = vec![32, 16, 8, 24];
        cfg.lookups_per_table = 2;
        cfg.top_mlp = vec![8, 1];
        cfg
    }

    fn global_batches(cfg: &DlrmConfig, gn: usize, count: usize) -> Vec<MiniBatch> {
        (0..count)
            .map(|i| {
                MiniBatch::random(
                    cfg,
                    gn,
                    IndexDistribution::Uniform,
                    &mut seeded_rng(1000 + i as u64, 5),
                )
            })
            .collect()
    }

    /// Single-process reference loss trajectory on the same batches.
    fn single_process_losses(
        cfg: &DlrmConfig,
        batches: &[MiniBatch],
        lr: f32,
        seed: u64,
    ) -> Vec<f64> {
        let mut model = DlrmModel::new(
            cfg,
            Execution::Reference,
            UpdateStrategy::Reference,
            PrecisionMode::Fp32,
            seed,
        );
        batches.iter().map(|b| model.train_step(b, lr)).collect()
    }

    /// Average of per-rank local losses = global-batch loss.
    fn mean_losses(per_rank: &[Vec<f64>]) -> Vec<f64> {
        let steps = per_rank[0].len();
        (0..steps)
            .map(|s| per_rank.iter().map(|r| r[s]).sum::<f64>() / per_rank.len() as f64)
            .collect()
    }

    #[test]
    fn distributed_matches_single_process_every_strategy() {
        let cfg = tiny_cfg();
        let batches = global_batches(&cfg, 12, 4);
        let want = single_process_losses(&cfg, &batches, 0.1, 77);

        for strategy in ExchangeStrategy::ALL {
            for nranks in [2usize, 4] {
                let opts = DistOptions {
                    strategy,
                    seed: 77,
                    threads_per_rank: 1,
                    ..Default::default()
                };
                let got = run_training(&cfg, nranks, &opts, &batches, 0.1);
                let mean = mean_losses(&got);
                for (step, (g, w)) in mean.iter().zip(&want).enumerate() {
                    assert!(
                        (g - w).abs() < 5e-3,
                        "{strategy} R={nranks} step {step}: dist {g} vs single {w}"
                    );
                }
            }
        }
    }

    #[test]
    fn single_rank_distributed_equals_single_process() {
        let cfg = tiny_cfg();
        let batches = global_batches(&cfg, 8, 3);
        let want = single_process_losses(&cfg, &batches, 0.2, 3);
        let got = run_training(
            &cfg,
            1,
            &DistOptions {
                seed: 3,
                threads_per_rank: 1,
                ..Default::default()
            },
            &batches,
            0.2,
        );
        for (g, w) in got[0].iter().zip(&want) {
            assert!((g - w).abs() < 1e-4, "{g} vs {w}");
        }
    }

    #[test]
    fn losses_decrease_under_distributed_training() {
        let cfg = tiny_cfg();
        // Repeat the same batch so the loss must fall.
        let batch = &global_batches(&cfg, 16, 1)[0];
        let batches: Vec<MiniBatch> = (0..25).map(|_| batch.clone()).collect();
        let opts = DistOptions {
            threads_per_rank: 1,
            ..Default::default()
        };
        let got = run_training(&cfg, 4, &opts, &batches, 0.3);
        let mean = mean_losses(&got);
        assert!(
            mean.last().unwrap() < &(mean[0] * 0.8),
            "loss {0} -> {1}",
            mean[0],
            mean.last().unwrap()
        );
    }

    #[test]
    fn bf16_wire_tracks_fp32_losses() {
        // A fully BF16 wire rounds every exchanged element once per hop,
        // so the loss trajectory drifts from the FP32 wire but must stay
        // within the RNE bound's ballpark — and still train.
        let cfg = tiny_cfg();
        let batches = global_batches(&cfg, 12, 4);
        let opts_fp = DistOptions {
            seed: 77,
            threads_per_rank: 1,
            ..Default::default()
        };
        let opts_bf = DistOptions {
            wire: WireConfig::all(WirePrecision::Bf16),
            ..opts_fp.clone()
        };
        let fp = mean_losses(&run_training(&cfg, 4, &opts_fp, &batches, 0.1));
        let bf = mean_losses(&run_training(&cfg, 4, &opts_bf, &batches, 0.1));
        for (step, (b, f)) in bf.iter().zip(&fp).enumerate() {
            assert!(
                (b - f).abs() < 2e-2,
                "step {step}: bf16 {b} vs fp32 {f} diverged"
            );
        }
    }

    #[test]
    fn int8_wire_tracks_fp32_losses() {
        // A fully INT8 wire (per-table scaled alltoalls + scaled allreduce)
        // quantizes far coarser than BF16, but the per-block scales keep
        // the relative error bounded — the trajectory must stay close and
        // keep training.
        let cfg = tiny_cfg();
        let batches = global_batches(&cfg, 12, 4);
        let opts_fp = DistOptions {
            seed: 77,
            threads_per_rank: 1,
            ..Default::default()
        };
        let opts_i8 = DistOptions {
            wire: WireConfig::all(WirePrecision::Int8),
            ..opts_fp.clone()
        };
        let fp = mean_losses(&run_training(&cfg, 4, &opts_fp, &batches, 0.1));
        let i8 = mean_losses(&run_training(&cfg, 4, &opts_i8, &batches, 0.1));
        for (step, (q, f)) in i8.iter().zip(&fp).enumerate() {
            assert!(
                (q - f).abs() < 2e-2,
                "step {step}: int8 {q} vs fp32 {f} diverged"
            );
        }
    }

    #[test]
    fn adaptive_wire_reaches_int8_and_tracks_fp32_losses() {
        let cfg = tiny_cfg();
        let batches = global_batches(&cfg, 12, 6);
        let opts_fp = DistOptions {
            seed: 77,
            threads_per_rank: 1,
            ..Default::default()
        };
        let fp = mean_losses(&run_training(&cfg, 4, &opts_fp, &batches, 0.1));
        let mut opts_ad = opts_fp.clone();
        opts_ad.wire.allreduce = AllreduceWire::Adaptive { error_bound: 0.05 };
        let out = CommWorld::run(4, |comm| {
            let mut model = DistDlrm::new(&cfg, comm, None, &opts_ad);
            let losses: Vec<f64> = batches.iter().map(|b| model.train_step(b, 0.1)).collect();
            (losses, model.wire_policy_stats().expect("adaptive policy"))
        });
        let per_rank: Vec<Vec<f64>> = out.iter().map(|(l, _)| l.clone()).collect();
        let ad = mean_losses(&per_rank);
        for (step, (a, f)) in ad.iter().zip(&fp).enumerate() {
            assert!(
                (a - f).abs() < 2e-2,
                "step {step}: adaptive {a} vs fp32 {f} diverged"
            );
        }
        // Every rank decided identically (the determinism contract) ...
        let stats = out[0].1;
        for (rank, (_, st)) in out.iter().enumerate() {
            assert_eq!(*st, stats, "rank {rank} policy decisions diverged");
        }
        // ... step 1 was cold (FP32), and the observed tiny gradients then
        // earn INT8 for the remaining steps.
        assert!(stats.fp32 >= 1, "first step must be cold: {stats:?}");
        assert!(stats.int8 > 0, "policy never reached INT8: {stats:?}");
        assert_eq!(stats.total(), batches.len() as u64);
    }

    #[test]
    fn prefetch_losses_match_naive_bitwise() {
        let cfg = tiny_cfg();
        let batches = global_batches(&cfg, 8, 4);
        let base = DistOptions {
            seed: 21,
            threads_per_rank: 1,
            ..Default::default()
        };
        let naive = run_training(&cfg, 2, &base, &batches, 0.1);
        for window in [1usize, 3] {
            let opts = DistOptions {
                prefetch: Prefetch::Lookahead { window },
                ..base.clone()
            };
            let got = run_training(&cfg, 2, &opts, &batches, 0.1);
            for (rank, (g, w)) in got.iter().zip(&naive).enumerate() {
                for (step, (a, b)) in g.iter().zip(w).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "W={window} rank {rank} step {step}: {a} vs {w:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn prefetch_rejects_unsound_configurations() {
        let cfg = tiny_cfg();
        let batches = global_batches(&cfg, 8, 1);
        for opts in [
            // Non-deterministic per-row update order.
            DistOptions {
                prefetch: Prefetch::Lookahead { window: 2 },
                update: UpdateStrategy::AtomicXchg,
                threads_per_rank: 1,
                ..Default::default()
            },
            // Quantized backward wire: dest and owner would disagree.
            DistOptions {
                prefetch: Prefetch::Lookahead { window: 2 },
                wire: WireConfig::all(WirePrecision::Bf16),
                threads_per_rank: 1,
                ..Default::default()
            },
        ] {
            let result = std::panic::catch_unwind(|| {
                let _ = run_training(&cfg, 2, &opts, &batches, 0.1);
            });
            assert!(result.is_err(), "unsound prefetch config must be rejected");
        }
    }

    #[test]
    fn rank_count_must_not_exceed_tables() {
        let cfg = tiny_cfg(); // 4 tables
        let result = std::panic::catch_unwind(|| {
            let _ = run_training(
                &cfg,
                5,
                &DistOptions::default(),
                &global_batches(&cfg, 10, 1),
                0.1,
            );
        });
        assert!(result.is_err());
    }

    #[test]
    fn default_threads_per_rank_is_sane() {
        let t = DistOptions::default().threads_per_rank;
        assert!((1..=8).contains(&t), "threads_per_rank {t}");
    }

    #[test]
    fn small_bucket_cap_still_matches_single_process() {
        // Force many tiny buckets: the trajectory must stay close to the
        // single-process reference (ring order differs per bucket, so this
        // is tolerance, not bitwise — bitwise across *schedules* is the
        // schedule_equivalence suite's job).
        let cfg = tiny_cfg();
        let batches = global_batches(&cfg, 8, 3);
        let want = single_process_losses(&cfg, &batches, 0.1, 9);
        let opts = DistOptions {
            seed: 9,
            threads_per_rank: 1,
            bucket_cap_bytes: 64, // 16 f32s per bucket
            ..Default::default()
        };
        let got = run_training(&cfg, 2, &opts, &batches, 0.1);
        let mean = mean_losses(&got);
        for (g, w) in mean.iter().zip(&want) {
            assert!((g - w).abs() < 5e-3, "{g} vs {w}");
        }
    }
}
