//! The hybrid-parallel distributed DLRM trainer.

use crate::ddp::{allreduce_mlp_grads, averaged_sgd_step};
use crate::exchange::{backward_exchange, forward_exchange, tables_of, ExchangeStrategy};
use dlrm::embedding_layer::EmbeddingLayer;
use dlrm::interaction::Interaction;
use dlrm::layers::{Activation, Execution, Mlp};
use dlrm::model::DlrmModel;
use dlrm_comm::chaos::FaultPlan;
use dlrm_comm::nonblocking::{create_channel_worlds_with_chaos, Backend, ProgressEngine};
use dlrm_comm::world::{CommWorld, Communicator};
use dlrm_data::{DlrmConfig, MiniBatch};
use dlrm_kernels::embedding::UpdateStrategy;
use dlrm_kernels::loss::{bce_with_logits_backward, bce_with_logits_loss};
use dlrm_tensor::init::seeded_rng;
use dlrm_tensor::Matrix;
use std::sync::Arc;

/// Options for constructing a distributed trainer.
#[derive(Clone)]
pub struct DistOptions {
    /// Embedding-exchange strategy.
    pub strategy: ExchangeStrategy,
    /// Embedding update strategy on each rank.
    pub update: UpdateStrategy,
    /// Worker threads per rank's compute pool.
    pub threads_per_rank: usize,
    /// Model seed — must match the single-process model for equivalence.
    pub seed: u64,
}

impl Default for DistOptions {
    fn default() -> Self {
        DistOptions {
            strategy: ExchangeStrategy::Alltoall,
            update: UpdateStrategy::RaceFree,
            threads_per_rank: 1,
            seed: 0,
        }
    }
}

/// One rank of a hybrid-parallel DLRM.
///
/// MLPs are replicated (data parallel); this rank additionally owns the
/// embedding tables `t ≡ rank (mod nranks)` (model parallel).
pub struct DistDlrm {
    /// The model configuration.
    pub cfg: DlrmConfig,
    comm: Communicator,
    engine: Option<ProgressEngine>,
    exec: Execution,
    /// Replicated bottom MLP.
    pub bottom: Mlp,
    /// Replicated top MLP.
    pub top: Mlp,
    /// `(global_table_index, layer)` for each owned table.
    pub local_tables: Vec<(usize, EmbeddingLayer)>,
    interaction: Interaction,
    strategy: ExchangeStrategy,
}

impl DistDlrm {
    /// Builds this rank's share of the model. Weights are seeded per
    /// component so they agree bit-for-bit with [`DlrmModel::new`] under
    /// the same seed.
    pub fn new(
        cfg: &DlrmConfig,
        comm: Communicator,
        engine: Option<ProgressEngine>,
        opts: &DistOptions,
    ) -> Self {
        assert!(
            comm.nranks() <= cfg.max_ranks(),
            "at most one rank per embedding table"
        );
        let bottom = Mlp::new(
            cfg.dense_features,
            &cfg.bottom_mlp,
            Activation::Relu,
            &mut seeded_rng(opts.seed, DlrmModel::BOTTOM_STREAM),
        );
        let top = Mlp::new(
            cfg.interaction_output_dim(),
            &cfg.top_mlp,
            Activation::None,
            &mut seeded_rng(opts.seed, DlrmModel::TOP_STREAM),
        );
        let local_tables = tables_of(cfg.num_tables, comm.nranks(), comm.rank())
            .into_iter()
            .map(|t| (t, DlrmModel::build_table(cfg, t, opts.update, opts.seed)))
            .collect();
        DistDlrm {
            cfg: cfg.clone(),
            comm,
            engine,
            exec: Execution::optimized(opts.threads_per_rank),
            bottom,
            top,
            local_tables,
            interaction: Interaction::new(cfg.emb_dim),
            strategy: opts.strategy,
        }
    }

    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    /// World size.
    pub fn nranks(&self) -> usize {
        self.comm.nranks()
    }

    /// One hybrid-parallel training iteration over a *global* minibatch
    /// (every rank passes the same batch; each processes its slice).
    /// Returns this rank's local loss.
    pub fn train_step(&mut self, global: &MiniBatch, lr: f32) -> f64 {
        let r = self.nranks();
        let gn = global.batch_size();
        assert_eq!(gn % r, 0, "global minibatch must divide by ranks");
        let n = gn / r;
        let me = self.rank();
        let exec = self.exec.clone();
        let e = self.cfg.emb_dim;

        // --- forward ------------------------------------------------------
        let local = global.slice(me * n, (me + 1) * n);
        let z0 = self.bottom.forward(&exec, &local.dense);

        // Model-parallel embedding forward over the full global batch.
        let local_outs: Vec<Matrix> = self
            .local_tables
            .iter_mut()
            .map(|(t, layer)| layer.forward(&exec, &global.indices[*t], &global.offsets[*t]))
            .collect();

        // Model-parallel -> data-parallel switch.
        let slices = forward_exchange(
            self.strategy,
            &self.comm,
            self.engine.as_ref(),
            &local_outs,
            self.cfg.num_tables,
            n,
            e,
        );

        let inter = self.interaction.forward(&exec, &z0, &slices);
        let logits_m = self.top.forward(&exec, &inter);
        let logits = logits_m.as_slice();

        let loss = bce_with_logits_loss(logits, &local.labels);

        // --- backward -----------------------------------------------------
        let mut dlogits = vec![0.0f32; n];
        bce_with_logits_backward(logits, &local.labels, &mut dlogits);
        let d_inter = self.top.backward(&exec, Matrix::from_slice(1, n, &dlogits));
        let (d_bottom, d_tables) = self.interaction.backward(&d_inter);

        // Data-parallel -> model-parallel switch for embedding gradients.
        let full_grads = backward_exchange(
            self.strategy,
            &self.comm,
            self.engine.as_ref(),
            &d_tables,
            self.cfg.num_tables,
            n,
            e,
        );
        // Local gradients are means over n = GN/R samples; dividing the
        // learning rate by R makes the sparse update a global-batch mean.
        let emb_lr = lr / r as f32;
        for ((_, layer), grad) in self.local_tables.iter_mut().zip(&full_grads) {
            layer.backward_update(&exec, grad, emb_lr);
        }

        let _ = self.bottom.backward(&exec, d_bottom);

        // DDP: sum MLP gradients, apply the averaged step.
        allreduce_mlp_grads(
            &self.comm,
            self.engine.as_ref(),
            &mut self.bottom,
            &mut self.top,
        );
        averaged_sgd_step(&mut self.bottom, lr, r);
        averaged_sgd_step(&mut self.top, lr, r);

        loss
    }
}

/// Convenience driver: trains `nranks` thread-ranks for the given global
/// batches and returns each rank's loss trajectory (rank-major).
pub fn run_training(
    cfg: &DlrmConfig,
    nranks: usize,
    opts: &DistOptions,
    batches: &[MiniBatch],
    lr: f32,
) -> Vec<Vec<f64>> {
    run_training_with_chaos(cfg, nranks, opts, batches, lr, None)
}

/// [`run_training`] over a chaotic transport: the same fault plan is
/// threaded through the blocking world *and* (for [`CclAlltoall`]) the
/// progress-engine channel worlds. With `plan = None` this is exactly
/// `run_training`; with a plan, losses must still be bitwise identical —
/// the chaos test suite checks precisely that.
///
/// [`CclAlltoall`]: ExchangeStrategy::CclAlltoall
pub fn run_training_with_chaos(
    cfg: &DlrmConfig,
    nranks: usize,
    opts: &DistOptions,
    batches: &[MiniBatch],
    lr: f32,
    plan: Option<Arc<FaultPlan>>,
) -> Vec<Vec<f64>> {
    let backend = Backend::CclLike { workers: 2 };
    let engines = if opts.strategy == ExchangeStrategy::CclAlltoall {
        Some(std::sync::Mutex::new(create_channel_worlds_with_chaos(
            nranks,
            backend,
            plan.clone(),
        )))
    } else {
        None
    };
    CommWorld::run_with_chaos(nranks, plan.clone(), |comm| {
        let engine = engines.as_ref().map(|m| {
            let comms = std::mem::take(&mut m.lock().unwrap()[comm.rank()]);
            ProgressEngine::new_with_chaos(backend, comms, plan.clone())
        });
        let mut rank_model = DistDlrm::new(cfg, comm, engine, opts);
        batches
            .iter()
            .map(|b| rank_model.train_step(b, lr))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrm::precision::PrecisionMode;
    use dlrm_data::IndexDistribution;

    fn tiny_cfg() -> DlrmConfig {
        let mut cfg = DlrmConfig::small().scaled_down(32, 512);
        cfg.dense_features = 6;
        cfg.bottom_mlp = vec![8, 4];
        cfg.emb_dim = 4;
        cfg.num_tables = 4;
        cfg.table_rows = vec![32, 16, 8, 24];
        cfg.lookups_per_table = 2;
        cfg.top_mlp = vec![8, 1];
        cfg
    }

    fn global_batches(cfg: &DlrmConfig, gn: usize, count: usize) -> Vec<MiniBatch> {
        (0..count)
            .map(|i| {
                MiniBatch::random(
                    cfg,
                    gn,
                    IndexDistribution::Uniform,
                    &mut seeded_rng(1000 + i as u64, 5),
                )
            })
            .collect()
    }

    /// Single-process reference loss trajectory on the same batches.
    fn single_process_losses(
        cfg: &DlrmConfig,
        batches: &[MiniBatch],
        lr: f32,
        seed: u64,
    ) -> Vec<f64> {
        let mut model = DlrmModel::new(
            cfg,
            Execution::Reference,
            UpdateStrategy::Reference,
            PrecisionMode::Fp32,
            seed,
        );
        batches.iter().map(|b| model.train_step(b, lr)).collect()
    }

    /// Average of per-rank local losses = global-batch loss.
    fn mean_losses(per_rank: &[Vec<f64>]) -> Vec<f64> {
        let steps = per_rank[0].len();
        (0..steps)
            .map(|s| per_rank.iter().map(|r| r[s]).sum::<f64>() / per_rank.len() as f64)
            .collect()
    }

    #[test]
    fn distributed_matches_single_process_every_strategy() {
        let cfg = tiny_cfg();
        let batches = global_batches(&cfg, 12, 4);
        let want = single_process_losses(&cfg, &batches, 0.1, 77);

        for strategy in ExchangeStrategy::ALL {
            for nranks in [2usize, 4] {
                let opts = DistOptions {
                    strategy,
                    seed: 77,
                    ..Default::default()
                };
                let got = run_training(&cfg, nranks, &opts, &batches, 0.1);
                let mean = mean_losses(&got);
                for (step, (g, w)) in mean.iter().zip(&want).enumerate() {
                    assert!(
                        (g - w).abs() < 5e-3,
                        "{strategy} R={nranks} step {step}: dist {g} vs single {w}"
                    );
                }
            }
        }
    }

    #[test]
    fn single_rank_distributed_equals_single_process() {
        let cfg = tiny_cfg();
        let batches = global_batches(&cfg, 8, 3);
        let want = single_process_losses(&cfg, &batches, 0.2, 3);
        let got = run_training(
            &cfg,
            1,
            &DistOptions {
                seed: 3,
                ..Default::default()
            },
            &batches,
            0.2,
        );
        for (g, w) in got[0].iter().zip(&want) {
            assert!((g - w).abs() < 1e-4, "{g} vs {w}");
        }
    }

    #[test]
    fn losses_decrease_under_distributed_training() {
        let cfg = tiny_cfg();
        // Repeat the same batch so the loss must fall.
        let batch = &global_batches(&cfg, 16, 1)[0];
        let batches: Vec<MiniBatch> = (0..25).map(|_| batch.clone()).collect();
        let got = run_training(&cfg, 4, &DistOptions::default(), &batches, 0.3);
        let mean = mean_losses(&got);
        assert!(
            mean.last().unwrap() < &(mean[0] * 0.8),
            "loss {0} -> {1}",
            mean[0],
            mean.last().unwrap()
        );
    }

    #[test]
    fn rank_count_must_not_exceed_tables() {
        let cfg = tiny_cfg(); // 4 tables
        let result = std::panic::catch_unwind(|| {
            let _ = run_training(
                &cfg,
                5,
                &DistOptions::default(),
                &global_batches(&cfg, 10, 1),
                0.1,
            );
        });
        assert!(result.is_err());
    }
}
