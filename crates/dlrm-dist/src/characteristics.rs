//! Table II: "DLRM model characteristics for distributed run".

use dlrm_data::DlrmConfig;

/// The derived distributed-run characteristics of one configuration.
#[derive(Debug, Clone)]
pub struct DistCharacteristics {
    /// Configuration name.
    pub name: String,
    /// Memory capacity required for all tables, bytes.
    pub table_bytes: u64,
    /// Minimum sockets required to hold the tables.
    pub min_sockets: usize,
    /// Maximum ranks (one per table at most).
    pub max_ranks: usize,
    /// Total allreduce size per iteration, bytes (Eq. 1).
    pub allreduce_bytes: u64,
    /// Strong-scaling alltoall volume, bytes (Eq. 2 at `GN`).
    pub alltoall_bytes: u64,
}

impl DistCharacteristics {
    /// Computes the Table II row for `cfg` given usable DRAM per socket.
    pub fn for_config(cfg: &DlrmConfig, bytes_per_socket: u64) -> Self {
        DistCharacteristics {
            name: cfg.name.clone(),
            table_bytes: cfg.total_table_bytes(),
            min_sockets: cfg.min_sockets(bytes_per_socket),
            max_ranks: cfg.max_ranks(),
            allreduce_bytes: cfg.allreduce_bytes(),
            alltoall_bytes: cfg.alltoall_bytes(cfg.gn_strong),
        }
    }

    /// All three paper configurations with the 8-socket node's 192 GB
    /// sockets (the machine the paper sizes Table II against).
    pub fn paper_table() -> Vec<Self> {
        DlrmConfig::all_paper()
            .iter()
            .map(|cfg| Self::for_config(cfg, 192 * (1 << 30)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table_matches_table2() {
        let rows = DistCharacteristics::paper_table();
        assert_eq!(rows.len(), 3);

        let small = &rows[0];
        assert_eq!(small.min_sockets, 1);
        assert_eq!(small.max_ranks, 8);
        let mb = small.allreduce_bytes as f64 / (1 << 20) as f64;
        assert!(
            (8.5..10.5).contains(&mb),
            "small allreduce {mb:.1} MiB (paper 9.5)"
        );

        let large = &rows[1];
        assert!(large.min_sockets >= 2, "large spans sockets");
        assert_eq!(large.max_ranks, 64);
        let gb = large.table_bytes as f64 / 1e9;
        assert!(
            (380.0..420.0).contains(&gb),
            "large tables {gb:.0} GB (paper 384)"
        );

        let mlperf = &rows[2];
        assert_eq!(mlperf.max_ranks, 26);
        assert_eq!(
            mlperf.min_sockets, 1,
            "paper: 1 socket (*large-memory node)"
        );
        let a2a = mlperf.alltoall_bytes as f64 / (1 << 20) as f64;
        assert!(
            (195.0..215.0).contains(&a2a),
            "mlperf alltoall {a2a:.0} MiB (paper 208)"
        );
    }
}
