//! # dlrm-dist — hybrid-parallel distributed DLRM (Section IV)
//!
//! The paper's parallelization strategy, reproduced functionally with
//! threads as ranks over the `dlrm-comm` substrate:
//!
//! * **MLPs are data-parallel**: every rank holds a replica of the bottom
//!   and top MLPs and processes its `LN = GN/R` slice of the global
//!   minibatch; weight gradients are summed with an allreduce
//!   (reduce-scatter + allgather) and applied with an averaged SGD step —
//!   the Distributed-Data-Parallel pattern.
//! * **Embeddings are model-parallel**: table `t` lives on rank `t mod R`
//!   and its owner processes the *whole* global minibatch for it. The
//!   resulting minibatch mismatch at the interaction is fixed by an
//!   embedding **exchange**, for which the paper compares four strategies
//!   ([`exchange::ExchangeStrategy`]): ScatterList (one scatter per
//!   table), FusedScatter (one coalesced scatter per owner), Alltoall (one
//!   native alltoall), and CCL-Alltoall (the alltoall on the multi-worker
//!   nonblocking backend).
//!
//! The headline correctness property — verified by this crate's tests and
//! the workspace integration tests — is that **every strategy at every
//! rank count reproduces the single-process model's loss trajectory** on
//! the same global batches (up to float-summation reassociation).
//!
//! The train step itself comes in two [`distributed::Schedule`]s: the
//! naive `Synchronous` ordering, and the paper's `Overlapped` ordering
//! built on split-phase exchanges ([`exchange`]) and an
//! issue-as-produced bucketed allreduce ([`bucketing`]). The two are
//! bitwise-identical in losses — overlap moves time, not bits.
//!
//! Orthogonally to the schedule, [`distributed::WireConfig`] picks the
//! on-wire element format ([`WirePrecision`]) of each hot collective —
//! the forward/backward embedding alltoalls and the bucketed allreduce —
//! so the paper's 16-bit wire halves the exchanged bytes while all local
//! arithmetic stays FP32. The allreduce additionally supports
//! [`distributed::AllreduceWire::Adaptive`]: an error-bounded policy
//! ([`wirepolicy::AdaptivePolicy`]) that picks FP32/BF16/scaled-INT8 per
//! gradient bucket from running statistics, quartering allreduce bytes
//! when gradients allow while every rank stays bitwise identical.
//!
//! A third orthogonal knob, [`prefetch::Prefetch`], replaces the pooled
//! forward alltoall with a BagPipe-style lookahead pipeline: per-window
//! index dedup, raw-row fetches that cross the wire once per residency,
//! local pooling, delayed-update row caches, and an early fetch of the
//! next batch's rows in flight behind backward compute — bitwise-identical
//! losses and parameter planes, fewer logical bytes.

pub mod bucketing;
pub mod characteristics;
pub mod ddp;
pub mod distributed;
pub mod exchange;
pub mod prefetch;
pub mod wirepolicy;

pub use bucketing::{BucketPlan, BucketReducer, DEFAULT_BUCKET_CAP_BYTES};
pub use characteristics::DistCharacteristics;
pub use distributed::{
    run_training, run_training_with_chaos, AllreduceWire, DistDlrm, DistOptions, Schedule,
    WireConfig,
};
pub use dlrm_comm::wire::WirePrecision;
pub use exchange::ExchangeStrategy;
pub use prefetch::Prefetch;
pub use wirepolicy::{AdaptivePolicy, PolicyStats};
