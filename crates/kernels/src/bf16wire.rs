//! SIMD BF16 pack/unpack for the wire-precision comm path.
//!
//! The BF16-wire collectives (see `dlrm-comm`) narrow every outgoing
//! payload to BF16 halfwords and widen incoming ones back to FP32. Those
//! conversions sit on the critical path of every alltoall/allreduce step,
//! so they get the same scalar/AVX2/AVX-512 tiering as the embedding row
//! primitives in [`rowops`](crate::embedding::rowops), dispatched through
//! the same [`Isa`] machinery.
//!
//! **Bit-exactness across tiers is a deliberate invariant.** Narrowing is
//! round-to-nearest-even exactly as [`dlrm_precision::Bf16::from_f32_rne`]
//! defines it (including the NaN-quieting rule), and widening is the exact
//! 16-bit left shift. Both are pure integer transforms, so every tier
//! produces bitwise identical halfwords/floats — which is what lets the
//! distributed equivalence suites assert bitwise-identical losses no matter
//! which tier a rank's conversion ran on.
//!
//! Payloads travel as raw `u16` bit patterns (not the [`Bf16`] newtype) so
//! the comm crate can ship plain `Vec<u16>` buffers without a precision
//! dependency in its message type.
//!
//! [`Bf16`]: dlrm_precision::Bf16

use crate::gemm::micro::Isa;
use dlrm_precision::Bf16;

/// Narrows `src` to BF16 halfwords (round-to-nearest-even) into `dst`.
///
/// Bitwise identical to [`Bf16::from_f32_rne`] per element on every tier.
#[inline]
pub fn narrow_slice(isa: Isa, src: &[f32], dst: &mut [u16]) {
    assert_eq!(src.len(), dst.len(), "narrow_slice length mismatch");
    // SAFETY: lengths checked equal; slices are valid for their lengths.
    unsafe { narrow_raw(isa, src.as_ptr(), dst.as_mut_ptr(), src.len()) }
}

/// Widens BF16 halfwords in `src` to FP32 into `dst` (exact).
#[inline]
pub fn widen_slice(isa: Isa, src: &[u16], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "widen_slice length mismatch");
    // SAFETY: lengths checked equal; slices are valid for their lengths.
    unsafe { widen_raw(isa, src.as_ptr(), dst.as_mut_ptr(), src.len()) }
}

/// Applies the BF16 wire quantization `f32 -> bf16 -> f32` in place.
///
/// This is what a value experiences when it crosses the wire once; the
/// BF16-wire reduce-scatter applies it to the final reduced chunk so every
/// rank (including the chunk's owner, which never receives it) holds the
/// same quantized values.
#[inline]
pub fn quantize_slice(isa: Isa, buf: &mut [f32]) {
    // Narrow+widen per register without a staging buffer: both directions
    // are exact integer transforms, so composing them in registers is
    // bitwise identical to a narrow_slice/widen_slice round trip.
    // SAFETY: one slice, valid for its length, used as both src and dst of
    // element-wise ops.
    unsafe { quantize_raw(isa, buf.as_mut_ptr(), buf.len()) }
}

unsafe fn narrow_raw(isa: Isa, src: *const f32, dst: *mut u16, len: usize) {
    match isa {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => narrow_avx512(src, dst, len),
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => narrow_avx2(src, dst, len),
        _ => narrow_scalar(src, dst, len),
    }
}

unsafe fn widen_raw(isa: Isa, src: *const u16, dst: *mut f32, len: usize) {
    match isa {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => widen_avx512(src, dst, len),
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => widen_avx2(src, dst, len),
        _ => widen_scalar(src, dst, len),
    }
}

unsafe fn quantize_raw(isa: Isa, buf: *mut f32, len: usize) {
    match isa {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => quantize_avx512(buf, len),
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => quantize_avx2(buf, len),
        _ => quantize_scalar(buf, len),
    }
}

unsafe fn narrow_scalar(src: *const f32, dst: *mut u16, len: usize) {
    for i in 0..len {
        *dst.add(i) = Bf16::from_f32_rne(*src.add(i)).to_bits();
    }
}

unsafe fn widen_scalar(src: *const u16, dst: *mut f32, len: usize) {
    for i in 0..len {
        *dst.add(i) = Bf16::from_bits(*src.add(i)).to_f32();
    }
}

unsafe fn quantize_scalar(buf: *mut f32, len: usize) {
    for i in 0..len {
        *buf.add(i) = Bf16::from_f32_rne(*buf.add(i)).to_f32();
    }
}

// ---------------------------------------------------------------------------
// AVX2 tiers
// ---------------------------------------------------------------------------
//
// Narrowing per 32-bit lane, all integer ops (bitwise identical to the
// scalar RNE sequence in dlrm_precision::Bf16::from_f32):
//   lsb     = (bits >> 16) & 1
//   rounded = bits + 0x7FFF + lsb          (wrapping, like wrapping_add)
//   norm    = rounded >> 16
//   nan     = (bits & 0x7FFF_FFFF) > 0x7F80_0000   (signed cmp is exact:
//             both operands are non-negative as i32)
//   res     = nan ? (bits >> 16) | 0x0040 : norm

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn narrow8_avx2(bits: std::arch::x86_64::__m256i) -> std::arch::x86_64::__m256i {
    use std::arch::x86_64::*;
    let hi = _mm256_srli_epi32::<16>(bits);
    let lsb = _mm256_and_si256(hi, _mm256_set1_epi32(1));
    let rounded = _mm256_add_epi32(bits, _mm256_add_epi32(_mm256_set1_epi32(0x7FFF), lsb));
    let norm = _mm256_srli_epi32::<16>(rounded);
    let abs = _mm256_and_si256(bits, _mm256_set1_epi32(0x7FFF_FFFF));
    let nan = _mm256_cmpgt_epi32(abs, _mm256_set1_epi32(0x7F80_0000));
    let quieted = _mm256_or_si256(hi, _mm256_set1_epi32(0x0040));
    _mm256_blendv_epi8(norm, quieted, nan)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn narrow_avx2(src: *const f32, dst: *mut u16, len: usize) {
    use std::arch::x86_64::*;
    let mut i = 0;
    while i + 16 <= len {
        let a = narrow8_avx2(_mm256_loadu_si256(src.add(i).cast()));
        let b = narrow8_avx2(_mm256_loadu_si256(src.add(i + 8).cast()));
        // Lanes hold values <= 0xFFFF, so the unsigned-saturating pack is
        // exact; packus interleaves 128-bit halves, the permute undoes it.
        let packed = _mm256_permute4x64_epi64::<0b11011000>(_mm256_packus_epi32(a, b));
        _mm256_storeu_si256(dst.add(i).cast(), packed);
        i += 16;
    }
    narrow_scalar(src.add(i), dst.add(i), len - i);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn widen_avx2(src: *const u16, dst: *mut f32, len: usize) {
    use std::arch::x86_64::*;
    let mut i = 0;
    while i + 8 <= len {
        let h = _mm_loadu_si128(src.add(i).cast());
        let w = _mm256_slli_epi32::<16>(_mm256_cvtepu16_epi32(h));
        _mm256_storeu_si256(dst.add(i).cast(), w);
        i += 8;
    }
    widen_scalar(src.add(i), dst.add(i), len - i);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn quantize_avx2(buf: *mut f32, len: usize) {
    use std::arch::x86_64::*;
    let mut i = 0;
    while i + 8 <= len {
        let res = narrow8_avx2(_mm256_loadu_si256(buf.add(i).cast()));
        // Widen in-register: the halfword sits in the lane's low 16 bits.
        _mm256_storeu_si256(buf.add(i).cast(), _mm256_slli_epi32::<16>(res));
        i += 8;
    }
    quantize_scalar(buf.add(i), len - i);
}

// ---------------------------------------------------------------------------
// AVX-512 tiers (AVX512F only — the pack uses vpmovdw, the tails stay
// scalar to avoid requiring AVX512BW 16-bit masked stores)
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[inline]
unsafe fn narrow16_avx512(bits: std::arch::x86_64::__m512i) -> std::arch::x86_64::__m512i {
    use std::arch::x86_64::*;
    let hi = _mm512_srli_epi32::<16>(bits);
    let lsb = _mm512_and_si512(hi, _mm512_set1_epi32(1));
    let rounded = _mm512_add_epi32(bits, _mm512_add_epi32(_mm512_set1_epi32(0x7FFF), lsb));
    let norm = _mm512_srli_epi32::<16>(rounded);
    let abs = _mm512_and_si512(bits, _mm512_set1_epi32(0x7FFF_FFFF));
    let nan = _mm512_cmpgt_epi32_mask(abs, _mm512_set1_epi32(0x7F80_0000));
    let quieted = _mm512_or_si512(hi, _mm512_set1_epi32(0x0040));
    _mm512_mask_mov_epi32(norm, nan, quieted)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn narrow_avx512(src: *const f32, dst: *mut u16, len: usize) {
    use std::arch::x86_64::*;
    let mut i = 0;
    while i + 16 <= len {
        let res = narrow16_avx512(_mm512_loadu_si512(src.add(i).cast()));
        _mm256_storeu_si256(dst.add(i).cast(), _mm512_cvtepi32_epi16(res));
        i += 16;
    }
    narrow_scalar(src.add(i), dst.add(i), len - i);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn widen_avx512(src: *const u16, dst: *mut f32, len: usize) {
    use std::arch::x86_64::*;
    let mut i = 0;
    while i + 16 <= len {
        let h = _mm256_loadu_si256(src.add(i).cast());
        let w = _mm512_slli_epi32::<16>(_mm512_cvtepu16_epi32(h));
        _mm512_storeu_si512(dst.add(i).cast(), w);
        i += 16;
    }
    widen_scalar(src.add(i), dst.add(i), len - i);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn quantize_avx512(buf: *mut f32, len: usize) {
    use std::arch::x86_64::*;
    let mut i = 0;
    while i + 16 <= len {
        let res = narrow16_avx512(_mm512_loadu_si512(buf.add(i).cast()));
        _mm512_storeu_si512(buf.add(i).cast(), _mm512_slli_epi32::<16>(res));
        i += 16;
    }
    quantize_scalar(buf.add(i), len - i);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding::rowops::available_isas;
    use dlrm_precision::bf16::quantize_f32;

    /// Adversarial bit patterns: specials, halfway cases, denormals,
    /// near-overflow, NaN payload variants (incl. a signalling pattern).
    fn adversarial() -> Vec<f32> {
        let mut v = vec![
            0.0,
            -0.0,
            1.0,
            -1.0,
            1.0 + 2.0f32.powi(-8), // halfway, round-to-even down
            1.0 + 2.0f32.powi(-7) + 2.0f32.powi(-8), // halfway, round-to-even up
            -(1.0 + 2.0f32.powi(-8)),
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::NAN,
            f32::from_bits(0x7F80_0001), // signalling NaN pattern
            f32::from_bits(0xFFC1_2345), // negative NaN with payload
            f32::from_bits(0x7F7F_FFFF), // max finite: rounds to +inf
            f32::from_bits(0x0000_0001), // smallest denormal
            f32::from_bits(0x807F_FFFF), // largest negative denormal
            f32::MIN_POSITIVE,
            2.0f32.powi(100),
            -2.0f32.powi(-100),
            core::f32::consts::PI,
        ];
        // Pseudo-random fill so vector bodies (not just tails) see variety.
        for i in 0..64u32 {
            v.push(f32::from_bits(
                i.wrapping_mul(2654435761).rotate_left(7) ^ 0x3F00_0000,
            ));
        }
        v
    }

    #[test]
    fn narrow_all_tiers_match_precision_reference() {
        let vals = adversarial();
        for len in [0usize, 1, 3, 7, 8, 15, 16, 17, 31, 33, 64, vals.len()] {
            let src = &vals[..len];
            let want: Vec<u16> = src
                .iter()
                .map(|&x| Bf16::from_f32_rne(x).to_bits())
                .collect();
            for isa in available_isas() {
                let mut got = vec![0u16; len];
                narrow_slice(isa, src, &mut got);
                assert_eq!(got, want, "narrow {isa:?} len={len} not bit-exact");
            }
        }
    }

    #[test]
    fn widen_all_tiers_exact() {
        let bits: Vec<u16> = (0..=u16::MAX)
            .step_by(7)
            .chain([0x7FC0, 0xFF80, 0x7F80])
            .collect();
        for len in [0usize, 1, 5, 8, 15, 16, 17, 31, bits.len()] {
            let src = &bits[..len];
            let want: Vec<u32> = src.iter().map(|&b| (b as u32) << 16).collect();
            for isa in available_isas() {
                let mut got = vec![0.0f32; len];
                widen_slice(isa, src, &mut got);
                let got_bits: Vec<u32> = got.iter().map(|x| x.to_bits()).collect();
                assert_eq!(got_bits, want, "widen {isa:?} len={len} not bit-exact");
            }
        }
    }

    #[test]
    fn quantize_matches_narrow_widen_round_trip() {
        let vals = adversarial();
        for isa in available_isas() {
            let mut q = vals.clone();
            quantize_slice(isa, &mut q);
            for (i, (&orig, &quant)) in vals.iter().zip(&q).enumerate() {
                assert_eq!(
                    quant.to_bits(),
                    quantize_f32(orig).to_bits(),
                    "{isa:?} idx {i}: quantize({orig}) mismatch"
                );
            }
        }
    }

    #[test]
    fn round_trip_is_identity_on_representable_values() {
        // Values whose low 16 f32 bits are zero survive the wire bitwise.
        let vals: Vec<f32> = [1.0f32, -2.5, 0.125, 384.0, -0.001953125]
            .iter()
            .map(|&x| f32::from_bits(x.to_bits() & 0xFFFF_0000))
            .collect();
        for isa in available_isas() {
            let mut h = vec![0u16; vals.len()];
            narrow_slice(isa, &vals, &mut h);
            let mut back = vec![0.0f32; vals.len()];
            widen_slice(isa, &h, &mut back);
            assert_eq!(
                back.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                vals.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn narrow_rejects_mismatched_lengths() {
        let mut dst = [0u16; 3];
        narrow_slice(Isa::Scalar, &[1.0; 4], &mut dst);
    }
}
