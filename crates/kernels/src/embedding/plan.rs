//! `BagPlan` — per-batch bucketing of the lookup stream by owning thread.
//!
//! Algorithm 4's race-free update gives thread `tid` the row range
//! `[M·tid/T, M·(tid+1)/T)` but makes **every** thread scan the full index
//! list to find its rows: O(NS·T) total work, and the scan itself becomes
//! the bottleneck the moment T grows (the clustered-index load imbalance
//! Figure 7 calls out only makes it worse). The fix — the same index
//! preprocessing BagPipe and the DLRM-inference dissection papers identify
//! as the remaining embedding headroom — is to partition the lookup list by
//! owner *once*, with a parallel counting sort, and then hand each thread
//! exactly its own lookups: O(NS) total work, no synchronization in the
//! apply loop, and a reusable artifact shared by the bucketed update and
//! the fused backward+update.
//!
//! The sort is **stable** (scan threads cover contiguous slices in order,
//! and each writes its slice's entries in order), so within a bucket the
//! planned order equals the original index-list order. Per table row that
//! is exactly the reference update's application order, which is what makes
//! the bucketed strategies bit-exact against [`UpdateStrategy::Reference`]
//! (see [`rowops`](super::rowops) for the per-element guarantee).
//!
//! All buffers are grow-only and reused across batches: after warm-up a
//! rebuild performs zero allocations.
//!
//! [`UpdateStrategy::Reference`]: super::UpdateStrategy::Reference

use crate::threadpool::ThreadPool;
use dlrm_tensor::util::partition_range;

/// Owner thread of table row `row` under the paper's `[M·tid/T, M·(tid+1)/T)`
/// partition — the closed-form inverse of
/// [`partition_range`](dlrm_tensor::util::partition_range).
#[inline]
pub fn owner_of_row(row: usize, rows: usize, buckets: usize) -> usize {
    debug_assert!(row < rows);
    // Largest tid with rows*tid/buckets <= row.
    (row * buckets + buckets - 1) / rows
}

/// A `*mut T` smuggled into the thread team; every thread writes a disjoint
/// set of positions (per-thread count blocks / cursor ranges).
#[derive(Clone, Copy)]
struct SendPtr<T>(*mut T);
// SAFETY: disjoint-write discipline is upheld by the build phases below.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor (rather than field access) so closures capture the whole
    /// wrapper — edition-2021 disjoint capture would otherwise pull the bare
    /// non-`Send` pointer out of it.
    #[inline]
    fn get(self) -> *mut T {
        self.0
    }
}

/// The bucketed lookup plan for one batch: lookup slots grouped by owning
/// thread, in original order within each bucket, plus (optionally) the
/// slot→bag map the fused backward+update needs.
#[derive(Default)]
pub struct BagPlan {
    /// Bucket count == thread-team size the plan was built for.
    buckets: usize,
    /// Table rows the plan was built for.
    rows: usize,
    /// Lookups in the planned batch.
    ns: usize,
    /// `buckets + 1` bucket boundaries into `slots`.
    bucket_start: Vec<usize>,
    /// Permutation of lookup slots, grouped by bucket, stable within.
    slots: Vec<u32>,
    /// Slot → bag map (filled by [`BagPlan::attach_bags`]).
    bag_of: Vec<u32>,
    /// Reused counting-sort scratch: `scan_thread × bucket` counts, then
    /// write cursors.
    counts: Vec<usize>,
    has_bags: bool,
}

impl BagPlan {
    /// An empty plan; [`BagPlan::build`] sizes all buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Buckets (thread-team size) of the last build.
    #[inline]
    pub fn buckets(&self) -> usize {
        self.buckets
    }

    /// Table rows of the last build.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Lookups of the last build.
    #[inline]
    pub fn ns(&self) -> usize {
        self.ns
    }

    /// The lookup slots owned by bucket `b`, in original index-list order.
    #[inline]
    pub fn bucket_slots(&self, b: usize) -> &[u32] {
        &self.slots[self.bucket_start[b]..self.bucket_start[b + 1]]
    }

    /// Bag of lookup slot `slot` (requires [`BagPlan::attach_bags`]).
    #[inline]
    pub fn bag_of(&self, slot: usize) -> usize {
        debug_assert!(self.has_bags, "attach_bags was not called");
        self.bag_of[slot] as usize
    }

    /// True once [`BagPlan::attach_bags`] has run for the current build.
    #[inline]
    pub fn has_bags(&self) -> bool {
        self.has_bags
    }

    /// Bytes of iteration-persistent scratch held by the plan.
    pub fn scratch_bytes(&self) -> usize {
        self.bucket_start.capacity() * std::mem::size_of::<usize>()
            + self.slots.capacity() * std::mem::size_of::<u32>()
            + self.bag_of.capacity() * std::mem::size_of::<u32>()
            + self.counts.capacity() * std::mem::size_of::<usize>()
    }

    /// Builds the plan for `indices` over an `m`-row table, partitioned for
    /// `pool`'s thread team. Three phases of a parallel counting sort:
    /// per-thread bucket histograms over contiguous slices, a serial
    /// O(T²) cursor prefix-sum, and a parallel stable scatter.
    pub fn build(&mut self, pool: &ThreadPool, indices: &[u32], m: usize) {
        let t = pool.num_threads();
        let ns = indices.len();
        debug_assert!(indices.iter().all(|&i| (i as usize) < m));
        self.buckets = t;
        self.rows = m;
        self.ns = ns;
        self.has_bags = false;

        self.counts.resize(t * t, 0);
        self.counts.fill(0);
        self.bucket_start.resize(t + 1, 0);
        self.slots.resize(ns, 0);
        if ns == 0 {
            self.bucket_start.fill(0);
            return;
        }

        // Phase A: per-scan-thread histograms (disjoint count blocks).
        let counts_ptr = SendPtr(self.counts.as_mut_ptr());
        pool.broadcast(|st| {
            let range = partition_range(ns, t, st);
            // SAFETY: scan thread `st` writes only counts[st*t .. st*t+t].
            let mine = unsafe { std::slice::from_raw_parts_mut(counts_ptr.get().add(st * t), t) };
            for &ind in &indices[range] {
                mine[owner_of_row(ind as usize, m, t)] += 1;
            }
        });

        // Phase B (serial): bucket boundaries + per-(scan-thread, bucket)
        // write cursors. Column-wise exclusive prefix over the histogram.
        let mut run = 0usize;
        for b in 0..t {
            self.bucket_start[b] = run;
            for st in 0..t {
                let c = self.counts[st * t + b];
                self.counts[st * t + b] = run;
                run += c;
            }
        }
        self.bucket_start[t] = run;
        debug_assert_eq!(run, ns);

        // Phase C: stable parallel scatter. Each scan thread walks its
        // slice in order; cursor ranges are disjoint by construction.
        let counts_ptr = SendPtr(self.counts.as_mut_ptr());
        let slots_ptr = SendPtr(self.slots.as_mut_ptr());
        pool.broadcast(|st| {
            let range = partition_range(ns, t, st);
            // SAFETY: same disjoint count block as phase A.
            let cursors =
                unsafe { std::slice::from_raw_parts_mut(counts_ptr.get().add(st * t), t) };
            for s in range {
                let b = owner_of_row(indices[s] as usize, m, t);
                // SAFETY: each (st, b) cursor walks a range disjoint from
                // every other (st', b') range.
                unsafe { *slots_ptr.get().add(cursors[b]) = s as u32 };
                cursors[b] += 1;
            }
        });
    }

    /// Fills the slot→bag map from CSR `offsets` (parallel over bags) so
    /// the fused backward+update can find each planned lookup's `dY` row.
    pub fn attach_bags(&mut self, pool: &ThreadPool, offsets: &[usize]) {
        assert_eq!(
            *offsets.last().expect("offsets must have N+1 entries"),
            self.ns,
            "offsets do not match the planned lookup count"
        );
        self.bag_of.resize(self.ns, 0);
        let n = offsets.len() - 1;
        let bag_ptr = SendPtr(self.bag_of.as_mut_ptr());
        pool.parallel_for(n, |_tid, bags| {
            for bag in bags {
                for s in offsets[bag]..offsets[bag + 1] {
                    // SAFETY: lookup slots are partitioned by bag, and bags
                    // are partitioned across threads.
                    unsafe { *bag_ptr.get().add(s) = bag as u32 };
                }
            }
        });
        self.has_bags = true;
    }
}

/// `DedupPlan` — unique-row extraction over a lookup list, with a fan-out
/// map back to the original slots.
///
/// BagPipe's observation is that under Zipf-shaped traffic the same hot
/// rows appear many times within (and across) nearby batches, so a
/// transfer plan should ship each **unique** row once and fan it out
/// locally. This plan computes, in one O(NS) pass with grow-only
/// epoch-marked scratch, the unique rows of a lookup list in
/// **first-appearance order** plus `fanout[slot] → unique index` so a
/// gather over the originals can be reproduced bitwise from the deduped
/// set (rows are copied verbatim; summation order per bag is unchanged).
///
/// First-appearance order matters: it is a pure function of the index
/// list, so two ranks walking the same (deterministic) global batch
/// stream derive identical send/receive layouts without exchanging any
/// metadata — the property the distributed prefetch path builds on.
#[derive(Default)]
pub struct DedupPlan {
    /// Unique rows of the last build, in first-appearance order.
    uniques: Vec<u32>,
    /// Original lookup slot → index into `uniques`.
    fanout: Vec<u32>,
    /// Epoch marks per table row (grow-only, sized to the largest table
    /// seen). `seen[row] == epoch` ⇔ row already emitted this build.
    seen: Vec<u32>,
    /// Position of `row` in `uniques`, valid only when `seen[row] == epoch`.
    upos: Vec<u32>,
    /// Current epoch; bumping it invalidates all marks in O(1).
    epoch: u32,
}

impl DedupPlan {
    /// An empty plan; [`DedupPlan::build`] sizes all buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Deduplicates `indices` over an `m`-row table. Reuses scratch across
    /// builds (grow-only); after warm-up a rebuild performs no allocations
    /// as long as `m` and the lookup count do not exceed prior highs.
    pub fn build(&mut self, indices: &[u32], m: usize) {
        debug_assert!(indices.iter().all(|&i| (i as usize) < m));
        if self.seen.len() < m {
            self.seen.resize(m, 0);
            self.upos.resize(m, 0);
        }
        if self.epoch == u32::MAX {
            // Epoch wrap: hard-reset the marks (once per 2^32 builds).
            self.seen.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        let epoch = self.epoch;
        self.uniques.clear();
        self.fanout.clear();
        for &ind in indices {
            let row = ind as usize;
            if self.seen[row] != epoch {
                self.seen[row] = epoch;
                self.upos[row] = self.uniques.len() as u32;
                self.uniques.push(ind);
            }
            self.fanout.push(self.upos[row]);
        }
    }

    /// Unique rows of the last build, in first-appearance order.
    #[inline]
    pub fn uniques(&self) -> &[u32] {
        &self.uniques
    }

    /// Original slot → index into [`DedupPlan::uniques`].
    #[inline]
    pub fn fanout(&self) -> &[u32] {
        &self.fanout
    }

    /// Bytes of iteration-persistent scratch held by the plan.
    pub fn scratch_bytes(&self) -> usize {
        (self.uniques.capacity()
            + self.fanout.capacity()
            + self.seen.capacity()
            + self.upos.capacity())
            * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_is_inverse_of_partition_range() {
        for m in [1usize, 2, 3, 7, 10, 64, 100, 1000] {
            for t in [1usize, 2, 3, 4, 7, 8, 16, 28] {
                for tid in 0..t {
                    for row in partition_range(m, t, tid) {
                        assert_eq!(owner_of_row(row, m, t), tid, "m={m} t={t} row={row}");
                    }
                }
            }
        }
    }

    fn check_plan(indices: &[u32], m: usize, threads: usize) {
        let pool = ThreadPool::new(threads);
        let mut plan = BagPlan::new();
        plan.build(&pool, indices, m);
        assert_eq!(plan.buckets(), threads);
        assert_eq!(plan.ns(), indices.len());

        let mut seen = vec![0u32; indices.len()];
        for b in 0..threads {
            let owned = partition_range(m, threads, b);
            let slots = plan.bucket_slots(b);
            // Stable: original order preserved within the bucket.
            assert!(slots.windows(2).all(|w| w[0] < w[1]), "bucket {b} unstable");
            for &s in slots {
                let row = indices[s as usize] as usize;
                assert!(owned.contains(&row), "bucket {b} got foreign row {row}");
                seen[s as usize] += 1;
            }
        }
        assert!(
            seen.iter().all(|&c| c == 1),
            "each slot planned exactly once"
        );
    }

    #[test]
    fn plan_partitions_every_slot_exactly_once() {
        let mut state = 88172645463325252u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for (m, ns) in [(1usize, 5usize), (17, 0), (64, 200), (100, 999), (5, 64)] {
            let indices: Vec<u32> = (0..ns).map(|_| (next() % m as u64) as u32).collect();
            for threads in [1usize, 2, 4, 7] {
                check_plan(&indices, m, threads);
            }
        }
    }

    #[test]
    fn plan_handles_clustered_indices() {
        // Every lookup lands in thread 0's range: one bucket gets all of
        // them, the others stay empty — but coverage is still exact.
        let indices: Vec<u32> = (0..300).map(|i| (i % 8) as u32).collect();
        check_plan(&indices, 64, 4);
        let pool = ThreadPool::new(4);
        let mut plan = BagPlan::new();
        plan.build(&pool, &indices, 64);
        assert_eq!(plan.bucket_slots(0).len(), 300);
        for b in 1..4 {
            assert!(plan.bucket_slots(b).is_empty());
        }
    }

    #[test]
    fn rebuild_reuses_buffers() {
        let pool = ThreadPool::new(3);
        let mut plan = BagPlan::new();
        let big: Vec<u32> = (0..500u32).map(|i| i % 40).collect();
        plan.build(&pool, &big, 40);
        plan.attach_bags(&pool, &(0..=100).map(|b| b * 5).collect::<Vec<_>>());
        let cap = plan.scratch_bytes();
        let small: Vec<u32> = (0..100u32).map(|i| i % 40).collect();
        plan.build(&pool, &small, 40);
        plan.attach_bags(&pool, &(0..=20).map(|b| b * 5).collect::<Vec<_>>());
        assert_eq!(plan.scratch_bytes(), cap, "rebuild must not grow scratch");
        check_plan(&small, 40, 3);
    }

    #[test]
    fn attach_bags_maps_slots_to_bags() {
        let pool = ThreadPool::new(2);
        let indices = vec![3u32, 1, 4, 1, 5, 9, 2, 6];
        let offsets = vec![0usize, 3, 3, 5, 8]; // bag 1 empty
        let mut plan = BagPlan::new();
        plan.build(&pool, &indices, 10);
        plan.attach_bags(&pool, &offsets);
        let want = [0u32, 0, 0, 2, 2, 3, 3, 3];
        for (s, &w) in want.iter().enumerate() {
            assert_eq!(plan.bag_of(s), w as usize, "slot {s}");
        }
    }

    #[test]
    fn empty_batch_builds_empty_plan() {
        let pool = ThreadPool::new(4);
        let mut plan = BagPlan::new();
        plan.build(&pool, &[], 16);
        for b in 0..4 {
            assert!(plan.bucket_slots(b).is_empty());
        }
        plan.attach_bags(&pool, &[0usize, 0, 0]);
        assert!(plan.has_bags());
    }

    fn check_dedup(indices: &[u32], m: usize, plan: &mut DedupPlan) {
        plan.build(indices, m);
        assert_eq!(plan.fanout().len(), indices.len());
        // Round-trip: every slot maps back to its original row.
        for (s, &ind) in indices.iter().enumerate() {
            assert_eq!(plan.uniques()[plan.fanout()[s] as usize], ind, "slot {s}");
        }
        // Uniques are distinct and in first-appearance order.
        let mut first = Vec::new();
        for &ind in indices {
            if !first.contains(&ind) {
                first.push(ind);
            }
        }
        assert_eq!(plan.uniques(), &first[..]);
    }

    #[test]
    fn dedup_round_trips_and_preserves_first_appearance_order() {
        let mut plan = DedupPlan::new();
        check_dedup(&[3, 1, 4, 1, 5, 9, 2, 6, 5, 3], 10, &mut plan);
        check_dedup(&[7, 7, 7, 7], 8, &mut plan); // single unique row
        check_dedup(&[], 16, &mut plan); // empty batch
        check_dedup(
            &(0..200u32).map(|i| i % 3).collect::<Vec<_>>(),
            64,
            &mut plan,
        );
    }

    #[test]
    fn dedup_rebuild_reuses_buffers() {
        let mut plan = DedupPlan::new();
        let big: Vec<u32> = (0..500u32).map(|i| i % 40).collect();
        plan.build(&big, 40);
        let cap = plan.scratch_bytes();
        for k in 0..10u32 {
            let small: Vec<u32> = (0..100u32).map(|i| (i + k) % 40).collect();
            check_dedup(&small, 40, &mut plan);
        }
        assert_eq!(plan.scratch_bytes(), cap, "rebuild must not grow scratch");
    }
}
