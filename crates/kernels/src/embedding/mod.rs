//! EmbeddingBag kernels — Algorithms 1–4 of the paper plus the fused
//! backward+update.
//!
//! An embedding bag gathers `P` rows of a table `W ∈ R^{M×E}` per sample and
//! sums them (`L = AᵀW` with multi-hot `A`). A minibatch of `N` samples is
//! described by CSR-style `offsets` (`N+1` entries) into a flat `indices`
//! array of `NS` lookups.
//!
//! The *update* is where the paper's single-socket analysis lives: applying
//! per-lookup gradient rows `dW[NS][E]` back into the table races when the
//! same row is referenced twice. The four strategies of Section III-A:
//!
//! * [`UpdateStrategy::Reference`] — Algorithm 3, single-threaded (the
//!   PyTorch-v1.4-style baseline of Figure 7).
//! * [`UpdateStrategy::AtomicXchg`] — parallel over lookups; each scalar
//!   accumulation is a compare-exchange loop on the table element (Xeons
//!   have no native FP atomic add).
//! * [`UpdateStrategy::Rtm`] — optimistic row-granular critical sections.
//!   Hardware TSX is not reachable from stable Rust (and is fused off on
//!   current parts), so this is emulated with striped spinlocks; like RTM it
//!   permits SIMD inside the critical section, unlike per-element CAS.
//! * [`UpdateStrategy::RaceFree`] — Algorithm 4: each thread owns a
//!   contiguous row range `[M·tid/T, M·(tid+1)/T)` and scans the *entire*
//!   index list, applying only the updates that land in its range. No
//!   synchronization, better locality, but load-imbalanced for clustered
//!   indices — and O(NS·T) total scan work.
//! * [`UpdateStrategy::Bucketed`] — race-free ownership without the full
//!   scan: a [`plan::BagPlan`] counting-sorts the lookup list by owning
//!   thread once per batch, so each thread applies exactly its own lookups.
//!   O(NS) total work; bit-exact with `Reference` (the sort is stable).
//!
//! [`fused_backward_update`] skips materializing `dW[NS][E]` entirely and
//! scatters `α·dY[n]` straight into the owned rows — the standalone-only
//! optimization the paper credits with up to 1.6× on embedding updates.
//! [`fused_backward_update_planned`] is its bucketed counterpart, driven by
//! the same `BagPlan`.
//!
//! All row arithmetic goes through the shared SIMD primitives in
//! [`rowops`] (scalar/AVX2/AVX-512 tiers behind
//! [`gemm::micro::detect_isa`](crate::gemm::micro::detect_isa), forceable
//! via [`gemm::micro::set_isa_override`](crate::gemm::micro::set_isa_override)),
//! and the streaming kernels issue software prefetches of upcoming table
//! rows keyed off the index stream.

// Index-based loops in this module mirror the paper's Algorithms 1-4
// pseudocode line for line; keep them index-based for reviewability.
#![allow(clippy::needless_range_loop)]

pub mod plan;
pub mod rowops;
pub mod rowstore;

pub use plan::{BagPlan, DedupPlan};
pub use rowstore::RowStore;

use crate::gemm::micro::detect_isa;
use crate::threadpool::ThreadPool;
use dlrm_tensor::util::partition_range;
use dlrm_tensor::Matrix;
use rowops::PREFETCH_DISTANCE;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

/// The four update strategies of Section III-A / Figure 7, plus the
/// bucketed refinement of the race-free update this repo adds as a fifth
/// bar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateStrategy {
    /// Single-threaded Algorithm 3 (the naive-framework baseline).
    Reference,
    /// Parallel over lookups with per-element CAS float adds.
    AtomicXchg,
    /// Optimistic row-granular critical sections (RTM emulated via striped
    /// spinlocks), SIMD inside the section.
    Rtm,
    /// Algorithm 4: race-free row-range ownership, every thread scanning
    /// the full index list.
    RaceFree,
    /// Race-free ownership driven by a [`BagPlan`]: the lookup list is
    /// counting-sorted by owning thread once per batch, so total work drops
    /// from O(NS·T) to O(NS) and clustered indices no longer force every
    /// thread through a full scan.
    Bucketed,
}

impl UpdateStrategy {
    /// All strategies in Figure 7's bar order (with `Bucketed` appended).
    pub const ALL: [UpdateStrategy; 5] = [
        UpdateStrategy::Reference,
        UpdateStrategy::AtomicXchg,
        UpdateStrategy::Rtm,
        UpdateStrategy::RaceFree,
        UpdateStrategy::Bucketed,
    ];
}

impl std::fmt::Display for UpdateStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            UpdateStrategy::Reference => "Reference",
            UpdateStrategy::AtomicXchg => "Atomic XCHG",
            UpdateStrategy::Rtm => "RTM",
            UpdateStrategy::RaceFree => "Race Free",
            UpdateStrategy::Bucketed => "Bucketed",
        };
        f.write_str(s)
    }
}

fn check_bags(indices: &[u32], offsets: &[usize], m: usize) {
    assert!(!offsets.is_empty(), "offsets must have N+1 entries");
    assert_eq!(
        *offsets.last().unwrap(),
        indices.len(),
        "last offset must equal number of lookups"
    );
    debug_assert!(
        offsets.windows(2).all(|w| w[0] <= w[1]),
        "offsets must be sorted"
    );
    debug_assert!(
        indices.iter().all(|&i| (i as usize) < m),
        "index out of table bounds"
    );
}

// ---------------------------------------------------------------------------
// Forward (Algorithm 1)
// ---------------------------------------------------------------------------

/// Reference forward: the scalar, functionality-first loop nest of
/// Algorithm 1 with no parallelism — deliberately naive.
pub fn forward_reference(weight: &Matrix, indices: &[u32], offsets: &[usize], out: &mut Matrix) {
    let n = offsets.len() - 1;
    let e = weight.cols();
    check_bags(indices, offsets, weight.rows());
    assert_eq!(out.shape(), (n, e), "forward output shape");
    for bag in 0..n {
        for j in 0..e {
            out[(bag, j)] = 0.0;
        }
        for s in offsets[bag]..offsets[bag + 1] {
            let ind = indices[s] as usize;
            for j in 0..e {
                out[(bag, j)] += weight[(ind, j)];
            }
        }
    }
}

/// Optimized forward: parallel over bags, vectorized row accumulation.
/// This is the GUPS-like kernel expected to run at memory bandwidth.
pub fn forward(
    pool: &ThreadPool,
    weight: &Matrix,
    indices: &[u32],
    offsets: &[usize],
    out: &mut Matrix,
) {
    let n = offsets.len() - 1;
    let e = weight.cols();
    check_bags(indices, offsets, weight.rows());
    assert_eq!(out.shape(), (n, e), "forward output shape");
    let isa = detect_isa();
    let out_base = crate::gemm::SendMutPtr(out.as_mut_slice().as_mut_ptr());

    pool.parallel_for(n, move |_tid, bags| {
        // Lookups of a bag range are contiguous in the index stream, so the
        // prefetch window runs over flat slots, crossing bag boundaries.
        let slot_end = offsets[bags.end];
        for bag in bags {
            // SAFETY: each bag row is owned by exactly one thread.
            let out_row = unsafe { std::slice::from_raw_parts_mut(out_base.get().add(bag * e), e) };
            out_row.fill(0.0);
            for s in offsets[bag]..offsets[bag + 1] {
                let ahead = s + PREFETCH_DISTANCE;
                if ahead < slot_end {
                    rowops::prefetch_row(weight.row(indices[ahead] as usize).as_ptr(), e);
                }
                rowops::accumulate(isa, out_row, weight.row(indices[s] as usize));
            }
        }
    });
}

/// Serial SIMD forward: the same vectorized row accumulation as
/// [`forward`], without a thread pool. This is the inference-serving entry
/// point — micro-batches are small enough that pool fan-out costs more than
/// it buys, and a serving engine interleaving cache probes with row sums
/// needs a single-threaded gather it can mirror row for row. Bitwise
/// identical to [`forward`] and [`forward_reference`] (same per-bag
/// accumulation order, same two-rounding rowops tiers).
pub fn forward_serial(weight: &Matrix, indices: &[u32], offsets: &[usize], out: &mut Matrix) {
    let n = offsets.len() - 1;
    let e = weight.cols();
    check_bags(indices, offsets, weight.rows());
    assert_eq!(out.shape(), (n, e), "forward output shape");
    let isa = detect_isa();
    let slot_end = indices.len();
    for bag in 0..n {
        let out_row = out.row_mut(bag);
        out_row.fill(0.0);
        for s in offsets[bag]..offsets[bag + 1] {
            let ahead = s + PREFETCH_DISTANCE;
            if ahead < slot_end {
                rowops::prefetch_row(weight.row(indices[ahead] as usize).as_ptr(), e);
            }
            rowops::accumulate(isa, out_row, weight.row(indices[s] as usize));
        }
    }
}

// ---------------------------------------------------------------------------
// Backward (Algorithm 2)
// ---------------------------------------------------------------------------

/// Backward: expands `dY[N][E]` into per-lookup gradient rows `dW[NS][E]`.
/// (Each lookup in bag `n` receives a copy of `dY[n]` — the multi-hot
/// weights are all 1.)
pub fn backward(pool: &ThreadPool, dy: &Matrix, offsets: &[usize], dw: &mut Matrix) {
    let n = offsets.len() - 1;
    let e = dy.cols();
    assert_eq!(dy.rows(), n, "backward dY rows");
    assert_eq!(
        dw.shape(),
        (*offsets.last().unwrap(), e),
        "backward dW shape"
    );
    let dw_base = crate::gemm::SendMutPtr(dw.as_mut_slice().as_mut_ptr());

    pool.parallel_for(n, move |_tid, bags| {
        for bag in bags {
            let src = dy.row(bag);
            for s in offsets[bag]..offsets[bag + 1] {
                // SAFETY: lookup slots s are partitioned by bag, and bags are
                // partitioned across threads.
                let dst = unsafe { std::slice::from_raw_parts_mut(dw_base.get().add(s * e), e) };
                dst.copy_from_slice(src);
            }
        }
    });
}

// ---------------------------------------------------------------------------
// Update (Algorithms 3 & 4)
// ---------------------------------------------------------------------------

/// Number of lock stripes for the RTM-emulation strategy. Power of two,
/// large enough that uniform random rows rarely collide on a stripe.
const RTM_STRIPES: usize = 1024;

/// A minimal test-and-test-and-set spinlock used as the RTM surrogate.
struct StripeLock(AtomicBool);

impl StripeLock {
    #[inline]
    fn lock(&self) {
        loop {
            if !self.0.swap(true, Ordering::Acquire) {
                return;
            }
            while self.0.load(Ordering::Relaxed) {
                std::hint::spin_loop();
            }
        }
    }

    #[inline]
    fn unlock(&self) {
        self.0.store(false, Ordering::Release);
    }
}

/// The stripe-lock array, engine-static so `update_rtm` does not allocate
/// (and re-fault) 1024 lock words on every call. One process-wide array is
/// correct even across concurrent tables: stripes only ever serialize, they
/// never alias rows between distinct weight matrices incorrectly (a stripe
/// guards "whoever holds it", not a specific address).
static RTM_LOCKS: [StripeLock; RTM_STRIPES] = {
    // Interior mutability in a const is exactly what a static lock table is.
    #[allow(clippy::declare_interior_mutable_const)]
    const UNLOCKED: StripeLock = StripeLock(AtomicBool::new(false));
    [UNLOCKED; RTM_STRIPES]
};

/// Applies `W[indices[i]] += alpha * dW[i]` for all `NS` lookups using the
/// chosen strategy. Pass `alpha = -lr` for an SGD step.
///
/// For [`UpdateStrategy::Bucketed`] this convenience entry builds a
/// throwaway [`BagPlan`] internally; steady-state callers (the embedding
/// layer) should hold a persistent plan and call [`update_bucketed`].
pub fn update(
    pool: &ThreadPool,
    strategy: UpdateStrategy,
    weight: &mut Matrix,
    dw: &Matrix,
    indices: &[u32],
    alpha: f32,
) {
    let (m, e) = weight.shape();
    assert_eq!(dw.shape(), (indices.len(), e), "update dW shape");
    debug_assert!(indices.iter().all(|&i| (i as usize) < m));

    match strategy {
        UpdateStrategy::Reference => update_reference(weight, dw, indices, alpha),
        UpdateStrategy::AtomicXchg => update_atomic(pool, weight, dw, indices, alpha),
        UpdateStrategy::Rtm => update_rtm(pool, weight, dw, indices, alpha),
        UpdateStrategy::RaceFree => update_race_free(pool, weight, dw, indices, alpha),
        UpdateStrategy::Bucketed => {
            let mut plan = BagPlan::new();
            plan.build(pool, indices, m);
            update_bucketed(pool, weight, dw, indices, alpha, &plan);
        }
    }
}

/// Algorithm 3, single-threaded. The per-row arithmetic goes through the
/// shared SIMD primitives — the *strategy* contrast of Figure 7 is about
/// parallelization, not about hobbling the baseline's inner loop.
fn update_reference(weight: &mut Matrix, dw: &Matrix, indices: &[u32], alpha: f32) {
    let e = weight.cols();
    let isa = detect_isa();
    let w_base = weight.as_mut_slice().as_mut_ptr();
    for (i, &ind) in indices.iter().enumerate() {
        let ahead = i + PREFETCH_DISTANCE;
        if ahead < indices.len() {
            // SAFETY (here and below): indices are checked < m by `update`.
            rowops::prefetch_row(unsafe { w_base.add(indices[ahead] as usize * e) }, e);
        }
        // SAFETY: the row is in-bounds and `dw` never aliases `weight`.
        unsafe { rowops::scatter_add(isa, w_base.add(ind as usize * e), dw.row(i), alpha) };
    }
}

/// The *framework-naive* update emulating the PyTorch-v1.4 CPU backend the
/// paper profiled ("a naive CPU backend implementation which was focused on
/// functionality instead of performance" — the kernel that made 99% of the
/// reference DLRM's runtime). It follows the framework's sparse-gradient
/// pipeline literally:
///
/// 1. **coalesce** the sparse gradient: per-step allocation of an ordered
///    row → gradient-row map, one boxed row per unique index, f64
///    accumulation of duplicates (what `Tensor::coalesce` does via sort);
/// 2. **apply** with accessor-style element addressing: flat offset
///    re-derived from `(row, col)` per scalar, bounds-checked, through a
///    dynamically dispatched accumulate (the type-erased scalar kernel).
///
/// Numerically equivalent to Algorithm 3 up to the f64 rounding of each
/// accumulate and the per-row (instead of per-lookup) application order —
/// but at framework speed.
pub fn update_framework_naive(weight: &mut Matrix, dw: &Matrix, indices: &[u32], alpha: f32) {
    let (rows, e) = weight.shape();
    // Step 1: coalesce duplicates into an ordered sparse structure.
    let mut coalesced: std::collections::BTreeMap<u32, Vec<f64>> =
        std::collections::BTreeMap::new();
    for (i, &ind) in indices.iter().enumerate() {
        let entry = coalesced.entry(ind).or_insert_with(|| vec![0.0f64; e]);
        for j in 0..e {
            entry[j] += alpha as f64 * dw[(i, j)] as f64;
        }
    }
    // Step 2: scalar accessor-style application.
    let accumulate: Box<dyn Fn(f64, f64) -> f64> = Box::new(|w, g| w + g);
    for (ind, grad_row) in coalesced {
        for (j, &g) in grad_row.iter().enumerate() {
            let r = ind as usize;
            assert!(r < rows && j < e, "index out of bounds");
            let flat = r * e + j;
            let w = weight.as_slice()[flat] as f64;
            weight.as_mut_slice()[flat] = std::hint::black_box(accumulate(w, g)) as f32;
        }
    }
}

/// CAS loop implementing a float atomic add on a `u32` cell.
#[inline]
fn atomic_add_f32(cell: &AtomicU32, v: f32) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let new = (f32::from_bits(cur) + v).to_bits();
        match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

/// Parallel over lookups; per-element CAS adds. The CAS loop is inherently
/// scalar (x86 has no atomic SIMD read-modify-write), so this strategy's
/// use of the row-primitive module is limited to the prefetch stream.
fn update_atomic(pool: &ThreadPool, weight: &mut Matrix, dw: &Matrix, indices: &[u32], alpha: f32) {
    let e = weight.cols();
    let len = weight.len();
    let w_base = crate::gemm::SendMutPtr(weight.as_mut_slice().as_mut_ptr());
    // SAFETY: AtomicU32 has the same size/alignment as f32; all concurrent
    // access during this call goes through the atomic view.
    let cells = unsafe { std::slice::from_raw_parts(w_base.get().cast::<AtomicU32>(), len) };

    pool.parallel_for(indices.len(), move |_tid, lookups| {
        let slot_end = lookups.end;
        for i in lookups {
            let ahead = i + PREFETCH_DISTANCE;
            if ahead < slot_end {
                rowops::prefetch_row(unsafe { w_base.get().add(indices[ahead] as usize * e) }, e);
            }
            let base = indices[i] as usize * e;
            let grad = dw.row(i);
            for (j, &g) in grad.iter().enumerate() {
                atomic_add_f32(&cells[base + j], alpha * g);
            }
        }
    });
}

/// Optimistic row-granular critical sections (RTM surrogate): lock the
/// stripe owning the row, then do a vectorized row update.
fn update_rtm(pool: &ThreadPool, weight: &mut Matrix, dw: &Matrix, indices: &[u32], alpha: f32) {
    let e = weight.cols();
    let isa = detect_isa();
    let w_base = crate::gemm::SendMutPtr(weight.as_mut_slice().as_mut_ptr());

    pool.parallel_for(indices.len(), |_tid, lookups| {
        let slot_end = lookups.end;
        for i in lookups {
            let ahead = i + PREFETCH_DISTANCE;
            if ahead < slot_end {
                rowops::prefetch_row(unsafe { w_base.get().add(indices[ahead] as usize * e) }, e);
            }
            let row = indices[i] as usize;
            let grad = dw.row(i);
            let lock = &RTM_LOCKS[row & (RTM_STRIPES - 1)];
            lock.lock();
            // SAFETY: the stripe lock serializes all writers of this row
            // (rows map to exactly one stripe).
            unsafe { rowops::scatter_add(isa, w_base.get().add(row * e), grad, alpha) };
            lock.unlock();
        }
    });
}

/// Algorithm 4: every thread scans all lookups, applying only those whose
/// row falls in its owned range.
fn update_race_free(
    pool: &ThreadPool,
    weight: &mut Matrix,
    dw: &Matrix,
    indices: &[u32],
    alpha: f32,
) {
    let (m, e) = weight.shape();
    let t = pool.num_threads();
    let isa = detect_isa();
    let w_base = crate::gemm::SendMutPtr(weight.as_mut_slice().as_mut_ptr());

    pool.broadcast(|tid| {
        let owned = partition_range(m, t, tid);
        for (i, &ind) in indices.iter().enumerate() {
            let row = ind as usize;
            if owned.contains(&row) {
                // SAFETY: row ranges are disjoint across threads.
                unsafe { rowops::scatter_add(isa, w_base.get().add(row * e), dw.row(i), alpha) };
            }
        }
    });
}

/// The [`UpdateStrategy::Bucketed`] apply loop: thread `tid` walks exactly
/// the lookups `plan` assigned to its bucket, in original index-list order
/// (so per-row application order — and therefore the bits — match
/// [`UpdateStrategy::Reference`]). O(NS) total work.
pub fn update_bucketed(
    pool: &ThreadPool,
    weight: &mut Matrix,
    dw: &Matrix,
    indices: &[u32],
    alpha: f32,
    plan: &BagPlan,
) {
    let (m, e) = weight.shape();
    assert_eq!(dw.shape(), (indices.len(), e), "update dW shape");
    assert_eq!(
        plan.buckets(),
        pool.num_threads(),
        "plan/team size mismatch"
    );
    assert_eq!(plan.rows(), m, "plan built for a different table");
    assert_eq!(plan.ns(), indices.len(), "plan built for a different batch");
    let isa = detect_isa();
    let w_base = crate::gemm::SendMutPtr(weight.as_mut_slice().as_mut_ptr());

    pool.broadcast(|tid| {
        let slots = plan.bucket_slots(tid);
        for (k, &slot) in slots.iter().enumerate() {
            let ahead = k + PREFETCH_DISTANCE;
            if ahead < slots.len() {
                rowops::prefetch_row(
                    unsafe {
                        w_base
                            .get()
                            .add(indices[slots[ahead] as usize] as usize * e)
                    },
                    e,
                );
            }
            let slot = slot as usize;
            let row = indices[slot] as usize;
            // SAFETY: buckets are disjoint row ranges across threads.
            unsafe { rowops::scatter_add(isa, w_base.get().add(row * e), dw.row(slot), alpha) };
        }
    });
}

// ---------------------------------------------------------------------------
// Fused backward + update
// ---------------------------------------------------------------------------

/// Fused Algorithm 2 + Algorithm 4: scatters `alpha · dY[n]` directly into
/// the owned table rows, never materializing the `dW[NS][E]` intermediate.
/// Standalone-only in the paper (framework autograd boundaries prevent the
/// fusion); measured there at up to 1.6× for embedding updates.
pub fn fused_backward_update(
    pool: &ThreadPool,
    weight: &mut Matrix,
    dy: &Matrix,
    indices: &[u32],
    offsets: &[usize],
    alpha: f32,
) {
    let (m, e) = weight.shape();
    let n = offsets.len() - 1;
    assert_eq!(dy.shape(), (n, e), "fused update dY shape");
    check_bags(indices, offsets, m);
    let t = pool.num_threads();
    let isa = detect_isa();
    let w_base = crate::gemm::SendMutPtr(weight.as_mut_slice().as_mut_ptr());

    pool.broadcast(|tid| {
        let owned = partition_range(m, t, tid);
        for bag in 0..n {
            let grad = dy.row(bag);
            for s in offsets[bag]..offsets[bag + 1] {
                let row = indices[s] as usize;
                if owned.contains(&row) {
                    // SAFETY: row ranges are disjoint across threads.
                    unsafe { rowops::scatter_add(isa, w_base.get().add(row * e), grad, alpha) };
                }
            }
        }
    });
}

/// [`fused_backward_update`] driven by a [`BagPlan`]: each thread scatters
/// `alpha · dY[bag(slot)]` over exactly its own planned lookups instead of
/// scanning every bag — O(NS) total work. Requires a plan built for this
/// batch with [`BagPlan::attach_bags`] run (the plan supplies the slot→bag
/// map). Bit-exact with the full-scan fused path and with
/// backward-then-[`UpdateStrategy::Reference`]: the stable plan preserves
/// per-row application order.
pub fn fused_backward_update_planned(
    pool: &ThreadPool,
    weight: &mut Matrix,
    dy: &Matrix,
    indices: &[u32],
    offsets: &[usize],
    alpha: f32,
    plan: &BagPlan,
) {
    let (m, e) = weight.shape();
    let n = offsets.len() - 1;
    assert_eq!(dy.shape(), (n, e), "fused update dY shape");
    check_bags(indices, offsets, m);
    assert_eq!(
        plan.buckets(),
        pool.num_threads(),
        "plan/team size mismatch"
    );
    assert_eq!(plan.rows(), m, "plan built for a different table");
    assert_eq!(plan.ns(), indices.len(), "plan built for a different batch");
    assert!(plan.has_bags(), "plan is missing the slot->bag map");
    let isa = detect_isa();
    let w_base = crate::gemm::SendMutPtr(weight.as_mut_slice().as_mut_ptr());

    pool.broadcast(|tid| {
        let slots = plan.bucket_slots(tid);
        for (k, &slot) in slots.iter().enumerate() {
            let ahead = k + PREFETCH_DISTANCE;
            if ahead < slots.len() {
                rowops::prefetch_row(
                    unsafe {
                        w_base
                            .get()
                            .add(indices[slots[ahead] as usize] as usize * e)
                    },
                    e,
                );
            }
            let slot = slot as usize;
            let row = indices[slot] as usize;
            let grad = dy.row(plan.bag_of(slot));
            // SAFETY: buckets are disjoint row ranges across threads.
            unsafe { rowops::scatter_add(isa, w_base.get().add(row * e), grad, alpha) };
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrm_tensor::assert_allclose;
    use dlrm_tensor::init::{seeded_rng, uniform};
    use rand::Rng;

    /// Random bag structure: n bags, up to `max_p` lookups each.
    fn random_bags(m: usize, n: usize, max_p: usize, seed: u64) -> (Vec<u32>, Vec<usize>) {
        let mut rng = seeded_rng(seed, 17);
        let mut offsets = vec![0usize];
        let mut indices = vec![];
        for _ in 0..n {
            let p = rng.gen_range(0..=max_p);
            for _ in 0..p {
                indices.push(rng.gen_range(0..m as u32));
            }
            offsets.push(indices.len());
        }
        (indices, offsets)
    }

    #[test]
    fn forward_matches_reference() {
        let pool = ThreadPool::new(4);
        let mut rng = seeded_rng(1, 0);
        let w = uniform(50, 16, -1.0, 1.0, &mut rng);
        let (indices, offsets) = random_bags(50, 33, 8, 2);
        let n = offsets.len() - 1;
        let mut want = Matrix::zeros(n, 16);
        forward_reference(&w, &indices, &offsets, &mut want);
        let mut got = Matrix::zeros(n, 16);
        forward(&pool, &w, &indices, &offsets, &mut got);
        assert_eq!(got.as_slice(), want.as_slice());
    }

    #[test]
    fn forward_empty_bag_yields_zero_row() {
        let pool = ThreadPool::new(2);
        let w = Matrix::from_fn(4, 3, |r, _| r as f32 + 1.0);
        let indices = vec![0u32, 2];
        let offsets = vec![0usize, 1, 1, 2]; // bag 1 is empty
        let mut out = Matrix::zeros(3, 3);
        forward(&pool, &w, &indices, &offsets, &mut out);
        assert_eq!(out.row(0), &[1.0, 1.0, 1.0]);
        assert_eq!(out.row(1), &[0.0, 0.0, 0.0]);
        assert_eq!(out.row(2), &[3.0, 3.0, 3.0]);
    }

    #[test]
    fn forward_serial_bitwise_matches_parallel_across_tiers() {
        use crate::gemm::micro::set_isa_override;
        let pool = ThreadPool::new(4);
        let mut rng = seeded_rng(2, 0);
        let w = uniform(64, 24, -1.0, 1.0, &mut rng);
        let (indices, offsets) = random_bags(64, 21, 6, 3);
        let n = offsets.len() - 1;
        for isa in rowops::available_isas() {
            set_isa_override(Some(isa));
            let mut want = Matrix::zeros(n, 24);
            forward(&pool, &w, &indices, &offsets, &mut want);
            let mut got = Matrix::zeros(n, 24);
            forward_serial(&w, &indices, &offsets, &mut got);
            assert_eq!(got.as_slice(), want.as_slice(), "{isa:?}");
        }
        set_isa_override(None);
    }

    #[test]
    fn forward_is_sparse_matrix_product() {
        // L = A^T W with multi-hot A: check one bag against explicit sum.
        let pool = ThreadPool::new(2);
        let w = Matrix::from_fn(6, 2, |r, c| (r * 2 + c) as f32);
        let indices = vec![1u32, 1, 4]; // repeated index counts twice
        let offsets = vec![0usize, 3];
        let mut out = Matrix::zeros(1, 2);
        forward(&pool, &w, &indices, &offsets, &mut out);
        assert_eq!(out.row(0), &[2.0 + 2.0 + 8.0, 3.0 + 3.0 + 9.0]);
    }

    #[test]
    fn backward_expands_rows() {
        let pool = ThreadPool::new(3);
        let dy = Matrix::from_fn(2, 4, |r, c| (r * 10 + c) as f32);
        let offsets = vec![0usize, 3, 5];
        let mut dw = Matrix::zeros(5, 4);
        backward(&pool, &dy, &offsets, &mut dw);
        for s in 0..3 {
            assert_eq!(dw.row(s), dy.row(0), "lookup {s}");
        }
        for s in 3..5 {
            assert_eq!(dw.row(s), dy.row(1), "lookup {s}");
        }
    }

    /// All four strategies must produce the same table (up to FP
    /// reassociation in the atomic strategy).
    fn check_update_agreement(m: usize, e: usize, n: usize, max_p: usize, seed: u64) {
        let pool = ThreadPool::new(4);
        let mut rng = seeded_rng(seed, 3);
        let w0 = uniform(m, e, -1.0, 1.0, &mut rng);
        let (indices, offsets) = random_bags(m, n, max_p, seed + 1);
        let ns = *offsets.last().unwrap();
        let dw = uniform(ns, e, -1.0, 1.0, &mut rng);
        let alpha = -0.05f32;

        let mut want = w0.clone();
        update(
            &pool,
            UpdateStrategy::Reference,
            &mut want,
            &dw,
            &indices,
            alpha,
        );

        for strat in [
            UpdateStrategy::AtomicXchg,
            UpdateStrategy::Rtm,
            UpdateStrategy::RaceFree,
            UpdateStrategy::Bucketed,
        ] {
            let mut got = w0.clone();
            update(&pool, strat, &mut got, &dw, &indices, alpha);
            assert_allclose(
                got.as_slice(),
                want.as_slice(),
                1e-5,
                &format!("update {strat}"),
            );
        }
    }

    #[test]
    fn update_strategies_agree_uniform_indices() {
        check_update_agreement(64, 8, 40, 6, 10);
    }

    #[test]
    fn update_strategies_agree_high_contention() {
        // Tiny table: every strategy hammers the same few rows.
        check_update_agreement(3, 16, 64, 8, 11);
    }

    #[test]
    fn update_strategies_agree_single_row_table() {
        check_update_agreement(1, 4, 16, 4, 12);
    }

    #[test]
    fn race_free_and_bucketed_are_bit_exact_vs_reference() {
        // Unlike the atomic strategy, race-free preserves the per-row
        // application order (index-list order), so it is bit-identical;
        // bucketed inherits the same property from the stable plan sort.
        let pool = ThreadPool::new(4);
        let mut rng = seeded_rng(13, 0);
        let w0 = uniform(32, 8, -1.0, 1.0, &mut rng);
        let (indices, offsets) = random_bags(32, 50, 5, 14);
        let ns = *offsets.last().unwrap();
        let dw = uniform(ns, 8, -1.0, 1.0, &mut rng);

        let mut want = w0.clone();
        update(
            &pool,
            UpdateStrategy::Reference,
            &mut want,
            &dw,
            &indices,
            -0.1,
        );
        for strat in [UpdateStrategy::RaceFree, UpdateStrategy::Bucketed] {
            let mut got = w0.clone();
            update(&pool, strat, &mut got, &dw, &indices, -0.1);
            assert_eq!(got.as_slice(), want.as_slice(), "{strat} not bit-exact");
        }
    }

    #[test]
    fn bucketed_with_persistent_plan_matches_reference() {
        // The embedding-layer path: one plan reused (rebuilt) across batches.
        let pool = ThreadPool::new(3);
        let mut rng = seeded_rng(21, 0);
        let m = 48;
        let w0 = uniform(m, 8, -1.0, 1.0, &mut rng);
        let mut plan = BagPlan::new();
        for batch in 0..3 {
            let (indices, offsets) = random_bags(m, 20 + batch, 5, 22 + batch as u64);
            let ns = *offsets.last().unwrap();
            let dw = uniform(ns, 8, -1.0, 1.0, &mut rng);

            let mut want = w0.clone();
            update_reference(&mut want, &dw, &indices, -0.3);

            let mut got = w0.clone();
            plan.build(&pool, &indices, m);
            update_bucketed(&pool, &mut got, &dw, &indices, -0.3, &plan);
            assert_eq!(got.as_slice(), want.as_slice(), "batch {batch}");
        }
    }

    #[test]
    fn fused_equals_backward_then_update() {
        let pool = ThreadPool::new(4);
        let mut rng = seeded_rng(15, 0);
        let w0 = uniform(40, 8, -1.0, 1.0, &mut rng);
        let (indices, offsets) = random_bags(40, 25, 6, 16);
        let n = offsets.len() - 1;
        let ns = *offsets.last().unwrap();
        let dy = uniform(n, 8, -1.0, 1.0, &mut rng);
        let alpha = -0.02f32;

        // Unfused: backward expand, then race-free update.
        let mut dw = Matrix::zeros(ns, 8);
        backward(&pool, &dy, &offsets, &mut dw);
        let mut want = w0.clone();
        update(
            &pool,
            UpdateStrategy::RaceFree,
            &mut want,
            &dw,
            &indices,
            alpha,
        );

        let mut got = w0.clone();
        fused_backward_update(&pool, &mut got, &dy, &indices, &offsets, alpha);
        assert_allclose(got.as_slice(), want.as_slice(), 1e-6, "fused");
    }

    #[test]
    fn planned_fused_is_bit_exact_vs_full_scan_fused() {
        let pool = ThreadPool::new(4);
        let mut rng = seeded_rng(31, 0);
        let m = 40;
        let w0 = uniform(m, 8, -1.0, 1.0, &mut rng);
        let (indices, offsets) = random_bags(m, 25, 6, 32);
        let n = offsets.len() - 1;
        let dy = uniform(n, 8, -1.0, 1.0, &mut rng);
        let alpha = -0.02f32;

        let mut want = w0.clone();
        fused_backward_update(&pool, &mut want, &dy, &indices, &offsets, alpha);

        let mut plan = BagPlan::new();
        plan.build(&pool, &indices, m);
        plan.attach_bags(&pool, &offsets);
        let mut got = w0.clone();
        fused_backward_update_planned(&pool, &mut got, &dy, &indices, &offsets, alpha, &plan);
        assert_eq!(got.as_slice(), want.as_slice());
    }

    #[test]
    #[should_panic(expected = "slot->bag")]
    fn planned_fused_requires_bag_map() {
        let pool = ThreadPool::new(2);
        let mut w = Matrix::zeros(4, 2);
        let dy = Matrix::zeros(1, 2);
        let indices = vec![1u32];
        let offsets = vec![0usize, 1];
        let mut plan = BagPlan::new();
        plan.build(&pool, &indices, 4); // attach_bags deliberately skipped
        fused_backward_update_planned(&pool, &mut w, &dy, &indices, &offsets, -0.1, &plan);
    }

    #[test]
    fn framework_naive_matches_reference() {
        let mut rng = seeded_rng(44, 0);
        let w0 = uniform(20, 8, -1.0, 1.0, &mut rng);
        let (indices, offsets) = random_bags(20, 30, 4, 45);
        let _ = offsets;
        let ns = indices.len();
        let dw = uniform(ns, 8, -1.0, 1.0, &mut rng);
        let pool = ThreadPool::new(1);

        let mut want = w0.clone();
        update(
            &pool,
            UpdateStrategy::Reference,
            &mut want,
            &dw,
            &indices,
            -0.07,
        );
        let mut got = w0.clone();
        update_framework_naive(&mut got, &dw, &indices, -0.07);
        assert_allclose(got.as_slice(), want.as_slice(), 1e-6, "framework naive");
    }

    #[test]
    fn update_rows_not_referenced_are_untouched() {
        let pool = ThreadPool::new(2);
        let w0 = Matrix::from_fn(8, 2, |r, _| r as f32);
        let indices = vec![3u32];
        let dw = Matrix::from_slice(1, 2, &[1.0, 1.0]);
        for strat in UpdateStrategy::ALL {
            let mut w = w0.clone();
            update(&pool, strat, &mut w, &dw, &indices, 1.0);
            for r in 0..8 {
                if r != 3 {
                    assert_eq!(w.row(r), w0.row(r), "{strat} touched row {r}");
                }
            }
            assert_eq!(w.row(3), &[4.0, 4.0]);
        }
    }

    #[test]
    fn atomic_add_f32_is_correct_under_contention() {
        let cell = AtomicU32::new(0.0f32.to_bits());
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        atomic_add_f32(&cell, 1.0);
                    }
                });
            }
        });
        assert_eq!(f32::from_bits(cell.load(Ordering::Relaxed)), 4000.0);
    }

    #[test]
    #[should_panic(expected = "last offset")]
    fn forward_rejects_inconsistent_offsets() {
        let pool = ThreadPool::new(1);
        let w = Matrix::zeros(4, 2);
        let mut out = Matrix::zeros(1, 2);
        forward(&pool, &w, &[0, 1], &[0usize, 1], &mut out);
    }
}
