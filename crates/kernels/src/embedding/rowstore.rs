//! `RowStore` — a compact slot store for embedding-table rows.
//!
//! Both the inference hot-row cache (`dlrm-serve`) and the distributed
//! prefetch cache keep bit-for-bit copies of a *sparse* subset of a table's
//! rows packed into a *dense* `slots × E` buffer, so the resident working
//! set stays hardware-cache-friendly regardless of how the rows scatter
//! across the full table. This type is that shared storage layer: slot
//! allocation (fixed-capacity or grow-on-demand with a free list), the
//! slot → row-id back-map, and verbatim row copies. Replacement *policy*
//! (CLOCK/doorkeeper in serve, validity epochs in the trainer) stays with
//! the caller — the store neither evicts nor decides admission.
//!
//! Grow-on-demand growth is amortized and slots are recycled through the
//! free list, so a steady-state workload whose resident set has stopped
//! growing performs no allocations.

/// A dense store of `E`-wide f32 rows addressed by slot.
pub struct RowStore {
    /// Packed row data, `slots × e`.
    data: Vec<f32>,
    /// Row width.
    e: usize,
    /// Slot → resident table row ([`RowStore::EMPTY_ROW`] if unoccupied).
    slot_row: Vec<u32>,
    /// Recycled slots available for [`RowStore::acquire`].
    free: Vec<u32>,
    /// Slots currently bound to a row.
    occupied: usize,
}

impl RowStore {
    /// Sentinel row id for an unoccupied slot.
    pub const EMPTY_ROW: u32 = u32::MAX;

    /// An empty store of `e`-wide rows that grows on demand.
    pub fn new(e: usize) -> Self {
        assert!(e >= 1, "row width must be >= 1");
        RowStore {
            data: Vec::new(),
            e,
            slot_row: Vec::new(),
            free: Vec::new(),
            occupied: 0,
        }
    }

    /// A store with `cap` pre-allocated (unoccupied) slots. Fixed-capacity
    /// callers address slots `0..cap` directly via [`RowStore::set`] and
    /// never call [`RowStore::acquire`].
    pub fn with_slots(cap: usize, e: usize) -> Self {
        assert!(e >= 1, "row width must be >= 1");
        assert!(cap < Self::EMPTY_ROW as usize, "capacity must fit in u32");
        RowStore {
            data: vec![0.0; cap * e],
            e,
            slot_row: vec![Self::EMPTY_ROW; cap],
            free: Vec::new(),
            occupied: 0,
        }
    }

    /// Row width.
    #[inline]
    pub fn width(&self) -> usize {
        self.e
    }

    /// Slots allocated (occupied or free).
    #[inline]
    pub fn slots(&self) -> usize {
        self.slot_row.len()
    }

    /// Slots currently occupied.
    #[inline]
    pub fn len(&self) -> usize {
        self.occupied
    }

    /// True when no slot is occupied.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Table row resident in `slot` ([`RowStore::EMPTY_ROW`] if none).
    #[inline]
    pub fn row_id(&self, slot: usize) -> u32 {
        self.slot_row[slot]
    }

    /// Claims a slot for `row_id` (free-list pop, else grow) and returns
    /// it. The slot's data is stale until written via
    /// [`RowStore::row_mut`] or [`RowStore::set`].
    pub fn acquire(&mut self, row_id: u32) -> u32 {
        debug_assert_ne!(row_id, Self::EMPTY_ROW);
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                let s = self.slot_row.len();
                assert!(s < Self::EMPTY_ROW as usize, "row store overflow");
                self.slot_row.push(Self::EMPTY_ROW);
                self.data.resize((s + 1) * self.e, 0.0);
                s as u32
            }
        };
        self.slot_row[slot as usize] = row_id;
        self.occupied += 1;
        slot
    }

    /// Returns `slot` to the free list.
    pub fn release(&mut self, slot: u32) {
        debug_assert_ne!(self.slot_row[slot as usize], Self::EMPTY_ROW);
        self.slot_row[slot as usize] = Self::EMPTY_ROW;
        self.free.push(slot);
        self.occupied -= 1;
    }

    /// Binds `slot` to `row_id` and copies `src` into it verbatim.
    #[inline]
    pub fn set(&mut self, slot: usize, row_id: u32, src: &[f32]) {
        debug_assert_ne!(row_id, Self::EMPTY_ROW);
        if self.slot_row[slot] == Self::EMPTY_ROW {
            self.occupied += 1;
        }
        self.slot_row[slot] = row_id;
        self.row_mut(slot).copy_from_slice(src);
    }

    /// The row stored in `slot`.
    #[inline]
    pub fn row(&self, slot: usize) -> &[f32] {
        &self.data[slot * self.e..(slot + 1) * self.e]
    }

    /// Mutable view of the row stored in `slot`.
    #[inline]
    pub fn row_mut(&mut self, slot: usize) -> &mut [f32] {
        &mut self.data[slot * self.e..(slot + 1) * self.e]
    }

    /// Bytes of iteration-persistent storage held by the store.
    pub fn scratch_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<f32>()
            + (self.slot_row.capacity() + self.free.capacity()) * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_slots_store_and_overwrite_rows_verbatim() {
        let mut s = RowStore::with_slots(3, 4);
        assert_eq!(s.slots(), 3);
        assert_eq!(s.len(), 0);
        s.set(1, 42, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.row_id(1), 42);
        assert_eq!(s.row(1), &[1.0, 2.0, 3.0, 4.0]);
        s.set(1, 7, &[9.0, 8.0, 7.0, 6.0]);
        assert_eq!(s.row_id(1), 7);
        assert_eq!(s.row(1), &[9.0, 8.0, 7.0, 6.0]);
        assert_eq!(s.row_id(0), RowStore::EMPTY_ROW);
    }

    #[test]
    fn acquire_release_recycles_without_growth() {
        let mut s = RowStore::new(2);
        let a = s.acquire(10);
        let b = s.acquire(20);
        assert_ne!(a, b);
        s.row_mut(a as usize).copy_from_slice(&[1.0, 2.0]);
        assert_eq!(s.len(), 2);
        // First release grows the free list once; steady-state cycles after
        // that must not allocate.
        s.release(a);
        let c = s.acquire(30);
        assert_eq!(c, a, "free list must recycle the released slot");
        assert_eq!(s.row_id(c as usize), 30);
        let bytes = s.scratch_bytes();
        for i in 0..32u32 {
            s.release(c);
            assert_eq!(s.len(), 1);
            assert_eq!(s.acquire(40 + i), c);
        }
        assert_eq!(s.scratch_bytes(), bytes, "recycling must not allocate");
    }

    #[test]
    fn grow_on_demand_extends_data() {
        let mut s = RowStore::new(3);
        for i in 0..16u32 {
            let slot = s.acquire(i);
            s.row_mut(slot as usize).fill(i as f32);
        }
        assert_eq!(s.slots(), 16);
        for i in 0..16usize {
            assert_eq!(s.row(i), &[i as f32; 3]);
        }
    }
}
