//! SIMD row primitives shared by every embedding kernel.
//!
//! The paper's single-socket thesis (Section III-A) is that EmbeddingBag
//! forward/backward/update are GUPS-like kernels that must run at DRAM
//! bandwidth. All of them reduce to three row operations over `E`-length
//! table rows — gather-accumulate, scaled accumulate (axpy), and a scatter
//! variant of axpy used from thread teams writing disjoint rows — so those
//! live here once, with scalar/AVX2/AVX-512 tiers dispatched through the
//! same [`Isa`] machinery as the GEMM microkernels
//! ([`detect_isa`](crate::gemm::micro::detect_isa) /
//! [`set_isa_override`](crate::gemm::micro::set_isa_override)).
//!
//! **Bit-exactness across tiers is a deliberate invariant.** Every tier
//! performs the same `dst[i] += alpha * src[i]` two-rounding sequence per
//! element (vector multiply then vector add — *no* FMA contraction), so a
//! kernel built on these primitives produces bitwise identical tables under
//! `Scalar`, `Avx2` and `Avx512`. That is what lets the equivalence suite
//! assert bit-exact agreement with the reference update wherever the
//! per-row application order is preserved.
//!
//! The module also exposes [`prefetch_row`]: embedding lookups are
//! data-dependent loads the hardware prefetcher cannot predict, but the
//! *index stream* is known in advance, so the kernels issue software
//! prefetches [`PREFETCH_DISTANCE`] lookups ahead.

use crate::gemm::micro::Isa;

/// How many lookups ahead of the current one the embedding kernels
/// prefetch the table row for. Far enough to cover DRAM latency at these
/// row sizes, near enough not to thrash L1.
pub const PREFETCH_DISTANCE: usize = 8;

/// Issues T0 software prefetches covering the first `min(e, 64)` floats of
/// the row starting at `ptr` (one prefetch per 64-byte line). A hint only:
/// safe to call with any in-bounds row pointer, and a no-op off x86-64.
// `_mm_prefetch` never dereferences (it cannot fault), so taking a raw
// pointer in a safe fn is sound despite the clippy lint's heuristic.
#[allow(clippy::not_unsafe_ptr_arg_deref)]
#[inline]
pub fn prefetch_row(ptr: *const f32, e: usize) {
    #[cfg(target_arch = "x86_64")]
    {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        const FLOATS_PER_LINE: usize = 16;
        let lines = e.div_ceil(FLOATS_PER_LINE).min(4);
        for line in 0..lines {
            // SAFETY: prefetch is a hint; it never faults, and the caller
            // passes a pointer into a live row anyway.
            unsafe { _mm_prefetch::<_MM_HINT_T0>(ptr.add(line * FLOATS_PER_LINE).cast::<i8>()) };
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (ptr, e);
    }
}

// ---------------------------------------------------------------------------
// accumulate: dst += src
// ---------------------------------------------------------------------------

/// `dst[i] += src[i]` — the forward-pass bag reduction.
#[inline]
pub fn accumulate(isa: Isa, dst: &mut [f32], src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "accumulate length mismatch");
    // SAFETY: lengths checked equal; slices are valid for their lengths.
    unsafe { accumulate_raw(isa, dst.as_mut_ptr(), src.as_ptr(), dst.len()) }
}

/// Raw-pointer [`accumulate`] for kernels that scatter into rows owned via
/// a thread-team pointer.
///
/// # Safety
/// `dst` must be valid for `len` reads+writes, `src` for `len` reads, and
/// the two must not alias.
pub unsafe fn accumulate_raw(isa: Isa, dst: *mut f32, src: *const f32, len: usize) {
    match isa {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => accumulate_avx512(dst, src, len),
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => accumulate_avx2(dst, src, len),
        _ => accumulate_scalar(dst, src, len),
    }
}

unsafe fn accumulate_scalar(dst: *mut f32, src: *const f32, len: usize) {
    for i in 0..len {
        *dst.add(i) += *src.add(i);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn accumulate_avx2(dst: *mut f32, src: *const f32, len: usize) {
    use std::arch::x86_64::*;
    let mut i = 0;
    while i + 8 <= len {
        let d = _mm256_loadu_ps(dst.add(i));
        let s = _mm256_loadu_ps(src.add(i));
        _mm256_storeu_ps(dst.add(i), _mm256_add_ps(d, s));
        i += 8;
    }
    while i < len {
        *dst.add(i) += *src.add(i);
        i += 1;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn accumulate_avx512(dst: *mut f32, src: *const f32, len: usize) {
    use std::arch::x86_64::*;
    let mut i = 0;
    while i + 16 <= len {
        let d = _mm512_loadu_ps(dst.add(i));
        let s = _mm512_loadu_ps(src.add(i));
        _mm512_storeu_ps(dst.add(i), _mm512_add_ps(d, s));
        i += 16;
    }
    if i < len {
        let mask: __mmask16 = (1u16 << (len - i)) - 1;
        let d = _mm512_maskz_loadu_ps(mask, dst.add(i));
        let s = _mm512_maskz_loadu_ps(mask, src.add(i));
        _mm512_mask_storeu_ps(dst.add(i), mask, _mm512_add_ps(d, s));
    }
}

// ---------------------------------------------------------------------------
// axpy: dst += alpha * src
// ---------------------------------------------------------------------------

/// `dst[i] += alpha * src[i]` — the SGD row update (`alpha = -lr`).
#[inline]
pub fn axpy(isa: Isa, dst: &mut [f32], src: &[f32], alpha: f32) {
    assert_eq!(dst.len(), src.len(), "axpy length mismatch");
    // SAFETY: lengths checked equal; slices are valid for their lengths.
    unsafe { scatter_add(isa, dst.as_mut_ptr(), src, alpha) }
}

/// Scatter form of [`axpy`]: adds `alpha * src` into the `src.len()` floats
/// at `dst`. This is the primitive every parallel update strategy uses to
/// apply a gradient row to a table row it owns (by range, bucket, lock or
/// plan).
///
/// # Safety
/// `dst` must be valid for `src.len()` reads+writes and must not alias
/// `src`.
pub unsafe fn scatter_add(isa: Isa, dst: *mut f32, src: &[f32], alpha: f32) {
    let (src, len) = (src.as_ptr(), src.len());
    match isa {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => axpy_avx512(dst, src, len, alpha),
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => axpy_avx2(dst, src, len, alpha),
        _ => axpy_scalar(dst, src, len, alpha),
    }
}

unsafe fn axpy_scalar(dst: *mut f32, src: *const f32, len: usize, alpha: f32) {
    for i in 0..len {
        *dst.add(i) += alpha * *src.add(i);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn axpy_avx2(dst: *mut f32, src: *const f32, len: usize, alpha: f32) {
    use std::arch::x86_64::*;
    let a = _mm256_set1_ps(alpha);
    let mut i = 0;
    while i + 8 <= len {
        let d = _mm256_loadu_ps(dst.add(i));
        let s = _mm256_loadu_ps(src.add(i));
        // mul + add, NOT fmadd: keeps the two-rounding sequence of the
        // scalar tier so all tiers stay bitwise identical.
        _mm256_storeu_ps(dst.add(i), _mm256_add_ps(d, _mm256_mul_ps(a, s)));
        i += 8;
    }
    while i < len {
        *dst.add(i) += alpha * *src.add(i);
        i += 1;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn axpy_avx512(dst: *mut f32, src: *const f32, len: usize, alpha: f32) {
    use std::arch::x86_64::*;
    let a = _mm512_set1_ps(alpha);
    let mut i = 0;
    while i + 16 <= len {
        let d = _mm512_loadu_ps(dst.add(i));
        let s = _mm512_loadu_ps(src.add(i));
        // mul + add, NOT fmadd: see the AVX2 tier.
        _mm512_storeu_ps(dst.add(i), _mm512_add_ps(d, _mm512_mul_ps(a, s)));
        i += 16;
    }
    if i < len {
        let mask: __mmask16 = (1u16 << (len - i)) - 1;
        let d = _mm512_maskz_loadu_ps(mask, dst.add(i));
        let s = _mm512_maskz_loadu_ps(mask, src.add(i));
        _mm512_mask_storeu_ps(dst.add(i), mask, _mm512_add_ps(d, _mm512_mul_ps(a, s)));
    }
}

/// The ISA tiers usable on this CPU, widest last (always contains
/// [`Isa::Scalar`]). Benches and tests iterate this to force each tier.
pub fn available_isas() -> Vec<Isa> {
    let mut v = vec![Isa::Scalar];
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
            v.push(Isa::Avx2);
        }
        if is_x86_feature_detected!("avx512f") {
            v.push(Isa::Avx512);
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(seed: usize, len: usize) -> Vec<f32> {
        (0..len)
            .map(|i| (((i * 2654435761 + seed * 40503) % 1999) as f32 - 999.5) / 512.0)
            .collect()
    }

    #[test]
    fn axpy_all_tiers_bit_exact_vs_scalar() {
        for len in [0usize, 1, 3, 7, 8, 15, 16, 17, 31, 64, 100, 129] {
            let src = mk(1, len);
            let base = mk(2, len);
            let mut want = base.clone();
            axpy(Isa::Scalar, &mut want, &src, -0.37);
            for isa in available_isas() {
                let mut got = base.clone();
                axpy(isa, &mut got, &src, -0.37);
                assert_eq!(got, want, "axpy {isa:?} len={len} not bit-exact");
            }
        }
    }

    #[test]
    fn accumulate_all_tiers_bit_exact_vs_scalar() {
        for len in [0usize, 1, 5, 8, 13, 16, 29, 48, 127] {
            let src = mk(3, len);
            let base = mk(4, len);
            let mut want = base.clone();
            accumulate(Isa::Scalar, &mut want, &src);
            for isa in available_isas() {
                let mut got = base.clone();
                accumulate(isa, &mut got, &src);
                assert_eq!(got, want, "accumulate {isa:?} len={len} not bit-exact");
            }
        }
    }

    #[test]
    fn axpy_matches_hand_loop() {
        let src = [1.0f32, -2.0, 3.0, -4.0, 5.0];
        for isa in available_isas() {
            let mut dst = [10.0f32, 20.0, 30.0, 40.0, 50.0];
            axpy(isa, &mut dst, &src, 2.0);
            assert_eq!(dst, [12.0, 16.0, 36.0, 32.0, 60.0], "{isa:?}");
        }
    }

    #[test]
    fn scatter_add_writes_through_raw_pointer() {
        let src = mk(5, 24);
        for isa in available_isas() {
            let mut dst = mk(6, 24);
            let mut want = dst.clone();
            axpy(Isa::Scalar, &mut want, &src, 0.5);
            // SAFETY: dst is valid for src.len() elements and disjoint.
            unsafe { scatter_add(isa, dst.as_mut_ptr(), &src, 0.5) };
            assert_eq!(dst, want, "{isa:?}");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn axpy_rejects_mismatched_lengths() {
        let mut dst = [0.0f32; 4];
        axpy(Isa::Scalar, &mut dst, &[1.0; 5], 1.0);
    }

    #[test]
    fn prefetch_is_a_safe_hint() {
        let row = [0.0f32; 256];
        prefetch_row(row.as_ptr(), row.len());
        prefetch_row(row.as_ptr(), 1);
    }
}
