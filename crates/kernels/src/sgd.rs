//! Dense SGD update kernels, including the Split-SGD-BF16 step.
//!
//! The dense steps are thin wrappers over the SIMD
//! [`rowops::axpy`](crate::embedding::rowops::axpy) tiers with
//! `alpha = -lr`. That is bit-exact with the classic `w -= lr * g` loop:
//! IEEE-754 negation is a sign flip, so `(-lr) * g` has exactly the bits of
//! `-(lr * g)`, and `w + (-x)` is the same operation as `w - x` — and the
//! rowops tiers are themselves bitwise identical across Scalar/AVX2/AVX-512.

use crate::embedding::rowops;
use crate::gemm::micro::detect_isa;
use crate::threadpool::ThreadPool;
use dlrm_precision::split::SplitTensor;

/// Plain FP32 SGD: `w -= lr * g`, single-threaded (SIMD over the row).
pub fn sgd_step(w: &mut [f32], g: &[f32], lr: f32) {
    assert_eq!(w.len(), g.len(), "sgd_step length mismatch");
    rowops::axpy(detect_isa(), w, g, -lr);
}

/// Plain FP32 SGD across a thread team — the shape of work the paper's
/// dedicated "MLP SGD threads" perform while overlapped with backward
/// GEMMs.
pub fn par_sgd_step(pool: &ThreadPool, w: &mut [f32], g: &[f32], lr: f32) {
    assert_eq!(w.len(), g.len(), "par_sgd_step length mismatch");
    let isa = detect_isa();
    let base = crate::gemm::SendMutPtr(w.as_mut_ptr());
    pool.parallel_for(w.len(), move |_tid, range| {
        // SAFETY: parallel_for ranges are disjoint, and each range stays in
        // bounds of `w`.
        unsafe { rowops::scatter_add(isa, base.get().add(range.start), &g[range], -lr) };
    });
}

/// Split-SGD-BF16 step on a [`SplitTensor`] (delegates to the precision
/// crate; provided here so callers depend on one kernels API).
pub fn split_sgd_step(w: &mut SplitTensor, g: &[f32], lr: f32) {
    w.sgd_step(g, lr);
}

/// SGD with per-parameter gradient averaging by `1/scale` — used by the
/// data-parallel path where gradients arrive as sums over ranks.
pub fn sgd_step_scaled(w: &mut [f32], g: &[f32], lr: f32, scale: f32) {
    assert_eq!(w.len(), g.len());
    rowops::axpy(detect_isa(), w, g, -(lr / scale));
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrm_precision::split::LoBits;

    #[test]
    fn basic_step() {
        let mut w = [1.0f32, 2.0];
        sgd_step(&mut w, &[0.5, -0.5], 0.1);
        assert_eq!(w, [0.95, 2.05]);
    }

    #[test]
    fn parallel_matches_serial() {
        let pool = ThreadPool::new(4);
        let g: Vec<f32> = (0..1003).map(|i| (i as f32).sin()).collect();
        let mut a: Vec<f32> = (0..1003).map(|i| i as f32 * 0.01).collect();
        let mut b = a.clone();
        sgd_step(&mut a, &g, 0.05);
        par_sgd_step(&pool, &mut b, &g, 0.05);
        assert_eq!(a, b);
    }

    #[test]
    fn simd_step_bit_exact_vs_classic_loop() {
        use crate::embedding::rowops::available_isas;
        use crate::gemm::micro::set_isa_override;
        for len in [0usize, 1, 7, 8, 17, 64, 1003] {
            let g: Vec<f32> = (0..len).map(|i| ((i * 37) as f32).sin() * 3.0).collect();
            let base: Vec<f32> = (0..len).map(|i| (i as f32).cos()).collect();
            let mut want = base.clone();
            for (wv, &gv) in want.iter_mut().zip(&g) {
                *wv -= 0.07 * gv;
            }
            for isa in available_isas() {
                set_isa_override(Some(isa));
                let mut got = base.clone();
                sgd_step(&mut got, &g, 0.07);
                assert_eq!(got, want, "sgd_step {isa:?} len={len} not bit-exact");
                let mut scaled = base.clone();
                sgd_step_scaled(&mut scaled, &g, 0.28, 4.0);
                assert_eq!(scaled, want, "sgd_step_scaled {isa:?} len={len}");
            }
            set_isa_override(None);
        }
    }

    #[test]
    fn scaled_step_averages() {
        let mut w = [0.0f32];
        sgd_step_scaled(&mut w, &[8.0], 0.5, 4.0); // avg grad = 2.0
        assert_eq!(w, [-1.0]);
    }

    #[test]
    fn split_step_delegates() {
        let mut t = SplitTensor::from_f32(&[1.0, -1.0], LoBits::Sixteen);
        split_sgd_step(&mut t, &[1.0, 1.0], 0.25);
        assert_eq!(t.to_f32_full(), vec![0.75, -1.25]);
    }
}
