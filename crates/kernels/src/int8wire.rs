//! SIMD scaled-INT8 quantize/dequantize for the wire-precision comm path.
//!
//! The INT8-wire collectives (see `dlrm-comm`) ship gradient payloads as
//! one signed byte per element plus a per-chunk FP32 scale: a value `x`
//! travels as `q = rne(clamp(x / scale, ±127))` and is reconstructed as
//! `q * scale`. These conversions sit on the critical path of every
//! allreduce hop, so they get the same scalar/AVX2/AVX-512 tiering as
//! [`bf16wire`](crate::bf16wire), dispatched through the same [`Isa`]
//! machinery.
//!
//! **Bit-exactness across tiers is a deliberate invariant.** The scalar
//! pipeline is the specification:
//!
//! 1. `t = x * (1.0 / scale)` — one FP32 multiply by the precomputed
//!    reciprocal (never a divide, so every tier performs the identical
//!    single rounding);
//! 2. `t = 0.0` if `t` is NaN (matches the SIMD ordered-compare mask);
//! 3. `t = clamp(t, -127.0, 127.0)` in the float domain, *before* the
//!    integer convert — so the convert never sees out-of-range input and
//!    the cvtps "integer indefinite" value can never appear;
//! 4. round to nearest, ties to even (`cvtps` under the default MXCSR
//!    rounding mode; `round_ties_even` in scalar code) and truncate to
//!    `i8`, exact because the value is already in `[-127, 127]`.
//!
//! Dequantization `(q as i8 as f32) * scale` is an exact int→float convert
//! followed by one multiply — a single rounding, identical on every tier.
//! Every tier therefore produces bitwise identical bytes/floats, which is
//! what lets the distributed suites assert bitwise-identical losses no
//! matter which tier a rank's conversion ran on.
//!
//! Quantized payloads travel as raw `u8` bit patterns (two's-complement
//! `i8`) so the comm crate can ship plain `Vec<u8>` buffers.

use crate::gemm::micro::Isa;

/// Largest-magnitude quantized value: the grid is symmetric `[-127, 127]`
/// (the `-128` code is unused so negation round-trips).
pub const INT8_QMAX: f32 = 127.0;

/// Largest absolute value in `src` (`0.0` for an empty slice; NaNs are
/// ignored). Scalar on purpose: `max` is exact, so there is no tiered
/// variant to keep in sync, and the quantize pass dominates anyway.
pub fn absmax(src: &[f32]) -> f32 {
    let mut m = 0.0f32;
    for &x in src {
        let a = x.abs();
        if a > m {
            m = a;
        }
    }
    m
}

/// The per-chunk scale for data with the given absmax: `absmax / 127`, so
/// the largest value maps to the edge of the quantized grid. Degenerate
/// ranges (zero, subnormal — whose reciprocal would overflow — infinite or
/// NaN absmax) fall back to `1.0`, under which such chunks quantize to all
/// zeros or saturate deterministically.
pub fn scale_for_absmax(absmax: f32) -> f32 {
    let s = absmax / INT8_QMAX;
    if s.is_normal() && s.recip().is_finite() {
        s
    } else {
        1.0
    }
}

/// Quantizes `src` to scaled INT8 bytes in `dst` (see the module docs for
/// the exact pipeline). `scale` must be positive and finite — callers
/// derive it via [`scale_for_absmax`] or a pre-agreed policy scale.
///
/// Bitwise identical across tiers for every input, including NaN (→ `0`)
/// and ±∞ (→ `±127`).
#[inline]
pub fn quantize_slice(isa: Isa, src: &[f32], scale: f32, dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "quantize_slice length mismatch");
    assert!(
        scale > 0.0 && scale.is_finite(),
        "int8 wire scale must be positive and finite, got {scale}"
    );
    let inv = 1.0 / scale;
    // SAFETY: lengths checked equal; slices are valid for their lengths.
    unsafe { quantize_raw(isa, src.as_ptr(), dst.as_mut_ptr(), src.len(), inv) }
}

/// Reconstructs FP32 values from scaled INT8 bytes: `(b as i8 as f32) *
/// scale`, exact convert + one multiply on every tier.
#[inline]
pub fn dequantize_slice(isa: Isa, src: &[u8], scale: f32, dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "dequantize_slice length mismatch");
    // SAFETY: lengths checked equal; slices are valid for their lengths.
    unsafe { dequantize_raw(isa, src.as_ptr(), dst.as_mut_ptr(), src.len(), scale) }
}

/// Applies the INT8 wire quantization `f32 → int8 → f32` in place.
///
/// This is what a value experiences when it crosses the wire once; the
/// INT8-wire collectives apply it to locally-kept copies (the alltoall's
/// self-destined chunk, a standalone reduce-scatter's own chunk) so every
/// rank holds values that crossed exactly one quantization.
#[inline]
pub fn quantize_dequantize_slice(isa: Isa, buf: &mut [f32], scale: f32) {
    assert!(
        scale > 0.0 && scale.is_finite(),
        "int8 wire scale must be positive and finite, got {scale}"
    );
    let inv = 1.0 / scale;
    // SAFETY: one slice, valid for its length, used as both src and dst of
    // element-wise ops.
    unsafe { quantize_dequantize_raw(isa, buf.as_mut_ptr(), buf.len(), inv, scale) }
}

unsafe fn quantize_raw(isa: Isa, src: *const f32, dst: *mut u8, len: usize, inv: f32) {
    match isa {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => quantize_avx512(src, dst, len, inv),
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => quantize_avx2(src, dst, len, inv),
        _ => quantize_scalar(src, dst, len, inv),
    }
}

unsafe fn dequantize_raw(isa: Isa, src: *const u8, dst: *mut f32, len: usize, scale: f32) {
    match isa {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => dequantize_avx512(src, dst, len, scale),
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => dequantize_avx2(src, dst, len, scale),
        _ => dequantize_scalar(src, dst, len, scale),
    }
}

unsafe fn quantize_dequantize_raw(isa: Isa, buf: *mut f32, len: usize, inv: f32, scale: f32) {
    match isa {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => quantize_dequantize_avx512(buf, len, inv, scale),
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => quantize_dequantize_avx2(buf, len, inv, scale),
        _ => quantize_dequantize_scalar(buf, len, inv, scale),
    }
}

/// The scalar specification of one quantization (module docs, steps 1–4).
#[inline]
fn quantize_one(x: f32, inv: f32) -> i8 {
    let t = x * inv;
    let t = if t.is_nan() { 0.0 } else { t };
    let t = t.clamp(-INT8_QMAX, INT8_QMAX);
    t.round_ties_even() as i32 as i8
}

unsafe fn quantize_scalar(src: *const f32, dst: *mut u8, len: usize, inv: f32) {
    for i in 0..len {
        *dst.add(i) = quantize_one(*src.add(i), inv) as u8;
    }
}

unsafe fn dequantize_scalar(src: *const u8, dst: *mut f32, len: usize, scale: f32) {
    for i in 0..len {
        *dst.add(i) = (*src.add(i) as i8 as f32) * scale;
    }
}

unsafe fn quantize_dequantize_scalar(buf: *mut f32, len: usize, inv: f32, scale: f32) {
    for i in 0..len {
        *buf.add(i) = (quantize_one(*buf.add(i), inv) as f32) * scale;
    }
}

// ---------------------------------------------------------------------------
// AVX2 tiers
// ---------------------------------------------------------------------------
//
// Lane-for-lane the scalar pipeline: multiply, ordered-compare mask zeroes
// NaN lanes, float-domain clamp via max/min, cvtps (RNE under the default
// MXCSR mode — we never change it). The i32→i8 pack is saturating but the
// lanes are already in [-127, 127], so it is exact.

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn q8_lanes_avx2(
    x: std::arch::x86_64::__m256,
    inv: std::arch::x86_64::__m256,
) -> std::arch::x86_64::__m256i {
    use std::arch::x86_64::*;
    let t = _mm256_mul_ps(x, inv);
    // NaN → 0.0: the ordered self-compare is all-ones exactly when t is
    // not NaN, so the AND keeps finite lanes and zeroes NaN lanes.
    let t = _mm256_and_ps(t, _mm256_cmp_ps::<_CMP_ORD_Q>(t, t));
    let t = _mm256_max_ps(t, _mm256_set1_ps(-INT8_QMAX));
    let t = _mm256_min_ps(t, _mm256_set1_ps(INT8_QMAX));
    _mm256_cvtps_epi32(t)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn quantize_avx2(src: *const f32, dst: *mut u8, len: usize, inv: f32) {
    use std::arch::x86_64::*;
    let vinv = _mm256_set1_ps(inv);
    let mut i = 0;
    while i + 8 <= len {
        let q = q8_lanes_avx2(_mm256_loadu_ps(src.add(i)), vinv);
        let lo = _mm256_castsi256_si128(q);
        let hi = _mm256_extracti128_si256::<1>(q);
        let words = _mm_packs_epi32(lo, hi);
        let bytes = _mm_packs_epi16(words, words);
        _mm_storel_epi64(dst.add(i).cast(), bytes);
        i += 8;
    }
    quantize_scalar(src.add(i), dst.add(i), len - i, inv);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dequantize_avx2(src: *const u8, dst: *mut f32, len: usize, scale: f32) {
    use std::arch::x86_64::*;
    let vs = _mm256_set1_ps(scale);
    let mut i = 0;
    while i + 8 <= len {
        let b = _mm_loadl_epi64(src.add(i).cast());
        let w = _mm256_cvtepi8_epi32(b);
        let f = _mm256_cvtepi32_ps(w);
        _mm256_storeu_ps(dst.add(i), _mm256_mul_ps(f, vs));
        i += 8;
    }
    dequantize_scalar(src.add(i), dst.add(i), len - i, scale);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn quantize_dequantize_avx2(buf: *mut f32, len: usize, inv: f32, scale: f32) {
    use std::arch::x86_64::*;
    let vinv = _mm256_set1_ps(inv);
    let vs = _mm256_set1_ps(scale);
    let mut i = 0;
    while i + 8 <= len {
        // Round-trip in registers: the i32 lanes already hold the exact
        // quantized values, so skipping the byte pack/unpack is bitwise
        // identical to a quantize_slice/dequantize_slice round trip.
        let q = q8_lanes_avx2(_mm256_loadu_ps(buf.add(i)), vinv);
        let f = _mm256_cvtepi32_ps(q);
        _mm256_storeu_ps(buf.add(i), _mm256_mul_ps(f, vs));
        i += 8;
    }
    quantize_dequantize_scalar(buf.add(i), len - i, inv, scale);
}

// ---------------------------------------------------------------------------
// AVX-512 tiers (AVX512F only — vpmovsdb does the i32→i8 saturating pack,
// the tails stay scalar to avoid requiring AVX512BW byte-masked stores)
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[inline]
unsafe fn q16_lanes_avx512(
    x: std::arch::x86_64::__m512,
    inv: std::arch::x86_64::__m512,
) -> std::arch::x86_64::__m512i {
    use std::arch::x86_64::*;
    let t = _mm512_mul_ps(x, inv);
    let ord = _mm512_cmpord_ps_mask(t, t);
    let t = _mm512_maskz_mov_ps(ord, t); // NaN lanes → 0.0
    let t = _mm512_max_ps(t, _mm512_set1_ps(-INT8_QMAX));
    let t = _mm512_min_ps(t, _mm512_set1_ps(INT8_QMAX));
    _mm512_cvtps_epi32(t)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn quantize_avx512(src: *const f32, dst: *mut u8, len: usize, inv: f32) {
    use std::arch::x86_64::*;
    let vinv = _mm512_set1_ps(inv);
    let mut i = 0;
    while i + 16 <= len {
        let q = q16_lanes_avx512(_mm512_loadu_ps(src.add(i)), vinv);
        _mm_storeu_si128(dst.add(i).cast(), _mm512_cvtsepi32_epi8(q));
        i += 16;
    }
    quantize_scalar(src.add(i), dst.add(i), len - i, inv);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn dequantize_avx512(src: *const u8, dst: *mut f32, len: usize, scale: f32) {
    use std::arch::x86_64::*;
    let vs = _mm512_set1_ps(scale);
    let mut i = 0;
    while i + 16 <= len {
        let b = _mm_loadu_si128(src.add(i).cast());
        let w = _mm512_cvtepi8_epi32(b);
        let f = _mm512_cvtepi32_ps(w);
        _mm512_storeu_ps(dst.add(i), _mm512_mul_ps(f, vs));
        i += 16;
    }
    dequantize_scalar(src.add(i), dst.add(i), len - i, scale);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn quantize_dequantize_avx512(buf: *mut f32, len: usize, inv: f32, scale: f32) {
    use std::arch::x86_64::*;
    let vinv = _mm512_set1_ps(inv);
    let vs = _mm512_set1_ps(scale);
    let mut i = 0;
    while i + 16 <= len {
        let q = q16_lanes_avx512(_mm512_loadu_ps(buf.add(i)), vinv);
        let f = _mm512_cvtepi32_ps(q);
        _mm512_storeu_ps(buf.add(i), _mm512_mul_ps(f, vs));
        i += 16;
    }
    quantize_dequantize_scalar(buf.add(i), len - i, inv, scale);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding::rowops::available_isas;

    /// Adversarial values: specials, exact halfway cases on several grids,
    /// clamp-edge and beyond-range magnitudes, NaN variants.
    fn adversarial() -> Vec<f32> {
        let mut v = vec![
            0.0,
            -0.0,
            1.0,
            -1.0,
            0.5,   // halfway at scale 1: ties to even → 0
            1.5,   // halfway at scale 1: ties to even → 2
            -2.5,  // halfway at scale 1: ties to even → -2
            126.5, // halfway at the grid edge
            127.0,
            -127.0,
            127.4,
            500.0, // beyond the grid: clamps to 127
            -1.0e20,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::NAN,
            f32::from_bits(0x7F80_0001), // signalling NaN pattern
            f32::from_bits(0xFFC1_2345), // negative NaN with payload
            f32::MIN_POSITIVE,
            f32::from_bits(0x0000_0001), // smallest denormal
            core::f32::consts::PI,
            -0.004,
        ];
        // Pseudo-random fill so vector bodies (not just tails) see variety.
        for i in 0..64u32 {
            let bits = i.wrapping_mul(2654435761).rotate_left(9) ^ 0x4240_0000;
            let x = f32::from_bits(bits);
            v.push(if x.is_finite() { x % 300.0 } else { x });
        }
        v
    }

    fn scales() -> Vec<f32> {
        vec![1.0, 0.5, 0.037, 3.75e-3, 128.0, 1.0e-6]
    }

    #[test]
    fn quantize_all_tiers_match_scalar_reference() {
        let vals = adversarial();
        for scale in scales() {
            let inv = 1.0 / scale;
            for len in [0usize, 1, 3, 7, 8, 15, 16, 17, 31, 33, 64, vals.len()] {
                let src = &vals[..len];
                let want: Vec<u8> = src.iter().map(|&x| quantize_one(x, inv) as u8).collect();
                for isa in available_isas() {
                    let mut got = vec![0u8; len];
                    quantize_slice(isa, src, scale, &mut got);
                    assert_eq!(got, want, "quantize {isa:?} scale={scale} len={len}");
                }
            }
        }
    }

    #[test]
    fn dequantize_all_tiers_exact_on_every_byte() {
        let bytes: Vec<u8> = (0..=u8::MAX).collect();
        for scale in scales() {
            let want: Vec<u32> = bytes
                .iter()
                .map(|&b| ((b as i8 as f32) * scale).to_bits())
                .collect();
            for isa in available_isas() {
                for len in [0usize, 1, 5, 8, 15, 16, 17, 31, bytes.len()] {
                    let mut got = vec![0.0f32; len];
                    dequantize_slice(isa, &bytes[..len], scale, &mut got);
                    let got_bits: Vec<u32> = got.iter().map(|x| x.to_bits()).collect();
                    assert_eq!(got_bits, want[..len], "dequantize {isa:?} scale={scale}");
                }
            }
        }
    }

    #[test]
    fn quantize_dequantize_matches_two_step_round_trip() {
        let vals = adversarial();
        for scale in scales() {
            for isa in available_isas() {
                let mut fused = vals.clone();
                quantize_dequantize_slice(isa, &mut fused, scale);
                let mut bytes = vec![0u8; vals.len()];
                quantize_slice(isa, &vals, scale, &mut bytes);
                let mut two_step = vec![0.0f32; vals.len()];
                dequantize_slice(isa, &bytes, scale, &mut two_step);
                for (i, (f, t)) in fused.iter().zip(&two_step).enumerate() {
                    assert_eq!(
                        f.to_bits(),
                        t.to_bits(),
                        "{isa:?} scale={scale} idx {i}: fused {f} vs two-step {t}"
                    );
                }
            }
        }
    }

    #[test]
    fn round_trip_error_bounded_by_half_scale() {
        // For in-range values the quantization error is at most scale/2
        // (round-to-nearest on a grid of spacing `scale`).
        let vals: Vec<f32> = (0..1000).map(|i| ((i * 37) as f32).sin() * 6.0).collect();
        let scale = scale_for_absmax(absmax(&vals));
        for isa in available_isas() {
            let mut q = vals.clone();
            quantize_dequantize_slice(isa, &mut q, scale);
            for (x, y) in vals.iter().zip(&q) {
                assert!(
                    (x - y).abs() <= scale / 2.0,
                    "{isa:?}: |{x} - {y}| > {}",
                    scale / 2.0
                );
            }
        }
    }

    #[test]
    fn grid_values_round_trip_exactly() {
        // Values already on the quantization grid survive the wire bitwise
        // when the scale is a power of two (the grid products are exact).
        let scale = 0.25f32;
        let vals: Vec<f32> = (-127i32..=127).map(|q| q as f32 * scale).collect();
        for isa in available_isas() {
            let mut q = vals.clone();
            quantize_dequantize_slice(isa, &mut q, scale);
            assert_eq!(
                q.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                vals.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "{isa:?}"
            );
        }
    }

    #[test]
    fn scale_for_absmax_handles_degenerate_ranges() {
        assert_eq!(scale_for_absmax(0.0), 1.0);
        assert_eq!(scale_for_absmax(f32::INFINITY), 1.0);
        assert_eq!(scale_for_absmax(f32::NAN), 1.0);
        // Subnormal absmax: the reciprocal of absmax/127 would overflow.
        assert_eq!(scale_for_absmax(f32::from_bits(1)), 1.0);
        // Normal case: the largest value maps to the grid edge.
        let s = scale_for_absmax(3.81);
        assert_eq!(s, 3.81 / 127.0);
        assert_eq!(quantize_one(3.81, 1.0 / s), 127);
        assert_eq!(quantize_one(-3.81, 1.0 / s), -127);
    }

    #[test]
    fn absmax_ignores_nan_and_sign() {
        assert_eq!(absmax(&[]), 0.0);
        assert_eq!(absmax(&[1.0, -3.5, f32::NAN, 2.0]), 3.5);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn quantize_rejects_mismatched_lengths() {
        let mut dst = [0u8; 3];
        quantize_slice(Isa::Scalar, &[1.0; 4], 1.0, &mut dst);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn quantize_rejects_nonpositive_scale() {
        let mut dst = [0u8; 1];
        quantize_slice(Isa::Scalar, &[1.0], 0.0, &mut dst);
    }
}
