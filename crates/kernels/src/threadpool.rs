//! A persistent worker-team thread pool with explicit thread ids.
//!
//! The paper's kernels use *static* work partitioning ("based on thread id
//! calculate `Kb_start`, `Kb_end`, ..." — Algorithm 5) and hand-built thread
//! teams (compute threads vs. dedicated SGD/communication threads,
//! Section IV-A). Work-stealing schedulers hide exactly the structure the
//! paper exploits, so this pool exposes the low-level broadcast model: a
//! closure is run once per worker with its `(thread_id, num_threads)` pair
//! and the caller blocks until the whole team finishes.
//!
//! Worker threads park between jobs; a broadcast wakes all of them, they run
//! the job, and the last one to finish releases the caller. Panics in
//! workers are captured and re-thrown on the calling thread.

use parking_lot::{Condvar, Mutex};
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Type-erased job: `f(thread_id)`.
type Job = Arc<dyn Fn(usize) + Send + Sync>;

struct Shared {
    state: Mutex<State>,
    work_ready: Condvar,
    work_done: Condvar,
}

struct State {
    /// Monotonic id of the current job; workers run a job once per epoch.
    epoch: u64,
    job: Option<Job>,
    /// Workers still running the current job.
    outstanding: usize,
    /// First captured panic payload from a worker.
    panic: Option<Box<dyn std::any::Any + Send>>,
    shutdown: bool,
}

/// A fixed-size team of persistent worker threads.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    n: usize,
}

impl ThreadPool {
    /// Spawns a pool with `n` worker threads (`n >= 1`).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "thread pool needs at least one worker");
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                outstanding: 0,
                panic: None,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            work_done: Condvar::new(),
        });
        let handles = (0..n)
            .map(|tid| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("dlrm-worker-{tid}"))
                    .spawn(move || worker_loop(tid, &shared))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        ThreadPool { shared, handles, n }
    }

    /// Pool with one worker per available CPU.
    pub fn with_default_parallelism() -> Self {
        let n = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        Self::new(n)
    }

    /// Number of worker threads.
    #[inline]
    pub fn num_threads(&self) -> usize {
        self.n
    }

    /// Runs `f(thread_id)` once on every worker and waits for the team.
    ///
    /// The closure may borrow from the caller's stack: the call does not
    /// return until every worker has finished (or panicked), so the borrow
    /// outlives all uses.
    pub fn broadcast<F>(&self, f: F)
    where
        F: Fn(usize) + Send + Sync,
    {
        // Erase the closure's lifetime. SAFETY: `broadcast` blocks until
        // `outstanding == 0`, i.e. no worker can touch the job after we
        // return, and the Arc below keeps the erased pointer alive while
        // any worker still holds a clone.
        let job: Arc<dyn Fn(usize) + Send + Sync> = unsafe {
            std::mem::transmute::<Arc<dyn Fn(usize) + Send + Sync + '_>, Job>(Arc::new(f))
        };

        let mut st = self.shared.state.lock();
        debug_assert_eq!(st.outstanding, 0, "broadcast is not reentrant");
        st.job = Some(job);
        st.epoch += 1;
        st.outstanding = self.n;
        self.shared.work_ready.notify_all();
        while st.outstanding > 0 {
            self.shared.work_done.wait(&mut st);
        }
        st.job = None;
        if let Some(payload) = st.panic.take() {
            drop(st);
            std::panic::resume_unwind(payload);
        }
    }

    /// Statically partitions `0..n_items` across the team and runs
    /// `f(thread_id, range)` per worker. Ranges follow the paper's
    /// `(n·tid/T, n·(tid+1)/T)` split.
    pub fn parallel_for<F>(&self, n_items: usize, f: F)
    where
        F: Fn(usize, Range<usize>) + Send + Sync,
    {
        let t = self.n;
        self.broadcast(move |tid| {
            let range = (n_items * tid / t)..(n_items * (tid + 1) / t);
            if !range.is_empty() {
                f(tid, range);
            }
        });
    }

    /// Dynamically partitions `0..n_items` into unit tasks claimed from a
    /// shared counter — used where the paper notes static partitioning load
    /// imbalance (clustered embedding indices).
    pub fn parallel_for_dynamic<F>(&self, n_items: usize, chunk: usize, f: F)
    where
        F: Fn(usize, Range<usize>) + Send + Sync,
    {
        assert!(chunk > 0);
        let next = AtomicUsize::new(0);
        self.broadcast(move |tid| loop {
            let start = next.fetch_add(chunk, Ordering::Relaxed);
            if start >= n_items {
                break;
            }
            f(tid, start..(start + chunk).min(n_items));
        });
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
            self.shared.work_ready.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(tid: usize, shared: &Shared) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    seen_epoch = st.epoch;
                    break st.job.clone().expect("epoch advanced without a job");
                }
                shared.work_ready.wait(&mut st);
            }
        };
        let result = catch_unwind(AssertUnwindSafe(|| job(tid)));
        // Drop our Arc clone before signalling completion so the erased
        // closure is guaranteed dead by the time `broadcast` returns.
        drop(job);
        let mut st = shared.state.lock();
        if let Err(payload) = result {
            if st.panic.is_none() {
                st.panic = Some(payload);
            }
        }
        st.outstanding -= 1;
        if st.outstanding == 0 {
            shared.work_done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn broadcast_runs_once_per_thread() {
        let pool = ThreadPool::new(4);
        let hits = AtomicUsize::new(0);
        let mask = AtomicUsize::new(0);
        pool.broadcast(|tid| {
            hits.fetch_add(1, Ordering::SeqCst);
            mask.fetch_or(1 << tid, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 4);
        assert_eq!(mask.load(Ordering::SeqCst), 0b1111);
    }

    #[test]
    fn broadcast_can_borrow_stack_data() {
        let pool = ThreadPool::new(3);
        let data = [1u64, 2, 3, 4, 5, 6];
        let sum = AtomicU64::new(0);
        pool.broadcast(|tid| {
            let part: u64 = data.iter().skip(tid).step_by(3).sum();
            sum.fetch_add(part, Ordering::SeqCst);
        });
        assert_eq!(sum.load(Ordering::SeqCst), 21);
    }

    #[test]
    fn sequential_broadcasts_reuse_workers() {
        let pool = ThreadPool::new(2);
        let count = AtomicUsize::new(0);
        for _ in 0..100 {
            pool.broadcast(|_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(count.load(Ordering::SeqCst), 200);
    }

    #[test]
    fn parallel_for_covers_every_item_once() {
        let pool = ThreadPool::new(5);
        let n = 1237;
        let marks: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(n, |_tid, range| {
            for i in range {
                marks[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(marks.iter().all(|m| m.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn parallel_for_dynamic_covers_every_item_once() {
        let pool = ThreadPool::new(4);
        let n = 999;
        let marks: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for_dynamic(n, 7, |_tid, range| {
            for i in range {
                marks[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(marks.iter().all(|m| m.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn parallel_for_with_more_threads_than_items() {
        let pool = ThreadPool::new(8);
        let hits = AtomicUsize::new(0);
        pool.parallel_for(3, |_tid, range| {
            hits.fetch_add(range.len(), Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let pool = ThreadPool::new(3);
        let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.broadcast(|tid| {
                if tid == 1 {
                    panic!("worker exploded");
                }
            });
        }));
        assert!(res.is_err());
        // Pool remains usable afterwards.
        let ok = AtomicUsize::new(0);
        pool.broadcast(|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn single_thread_pool_works() {
        let pool = ThreadPool::new(1);
        let mut out = 0u64;
        let cell = parking_lot::Mutex::new(&mut out);
        pool.broadcast(|_| {
            **cell.lock() += 42;
        });
        assert_eq!(out, 42);
    }
}
