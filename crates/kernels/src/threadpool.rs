//! A persistent worker-team thread pool with explicit thread ids.
//!
//! The paper's kernels use *static* work partitioning ("based on thread id
//! calculate `Kb_start`, `Kb_end`, ..." — Algorithm 5) and hand-built thread
//! teams (compute threads vs. dedicated SGD/communication threads,
//! Section IV-A). Work-stealing schedulers hide exactly the structure the
//! paper exploits, so this pool exposes the low-level broadcast model: a
//! closure is run once per worker with its `(thread_id, num_threads)` pair
//! and the caller blocks until the whole team finishes.
//!
//! Worker threads park between jobs; a broadcast wakes all of them, they run
//! the job, and the last one to finish releases the caller. Panics in
//! workers are captured and re-thrown on the calling thread.

use parking_lot::{Condvar, Mutex};
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Type-erased job: `f(thread_id)`.
type Job = Arc<dyn Fn(usize) + Send + Sync>;

struct Shared {
    state: Mutex<State>,
    work_ready: Condvar,
    work_done: Condvar,
    /// Workers that successfully pinned themselves to their assigned core.
    pinned: AtomicUsize,
}

/// Pins the calling thread to one CPU core. Best-effort: returns `false`
/// (and changes nothing) where unsupported or refused by the kernel —
/// callers treat placement as advisory, never as a correctness input.
///
/// Implemented as a raw `sched_setaffinity(0, ...)` syscall because the
/// workspace vendors all dependencies and `std` exposes no affinity API;
/// pid 0 means "the calling thread" for this syscall.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
pub fn pin_current_thread(core: usize) -> bool {
    const CPU_SET_WORDS: usize = 16; // 1024 CPUs
    if core >= CPU_SET_WORDS * 64 {
        return false;
    }
    let mut mask = [0u64; CPU_SET_WORDS];
    mask[core / 64] = 1u64 << (core % 64);
    let ret: i64;
    // SAFETY: sched_setaffinity (x86_64 syscall 203) reads `rdx..rdx+rsi`
    // bytes from our stack-owned mask and touches no other memory.
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") 203i64 => ret,
            in("rdi") 0usize,
            in("rsi") std::mem::size_of_val(&mask),
            in("rdx") mask.as_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret == 0
}

/// Fallback for platforms without an affinity syscall binding: a no-op.
#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
pub fn pin_current_thread(_core: usize) -> bool {
    false
}

struct State {
    /// Monotonic id of the current job; workers run a job once per epoch.
    epoch: u64,
    job: Option<Job>,
    /// Workers still running the current job.
    outstanding: usize,
    /// First captured panic payload from a worker.
    panic: Option<Box<dyn std::any::Any + Send>>,
    shutdown: bool,
}

/// A fixed-size team of persistent worker threads.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    n: usize,
}

impl ThreadPool {
    /// Spawns a pool with `n` worker threads (`n >= 1`).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "thread pool needs at least one worker");
        Self::spawn(n, None)
    }

    /// Spawns one worker per entry of `cores`, each pinned (best-effort)
    /// to its core id — the affinity hook the sharded serving engine uses
    /// to keep a shard's team on the cores a
    /// `dlrm_topology::CorePlacement` assigned it. Pin failures are
    /// tolerated (the worker just runs unpinned); [`Self::pinned_workers`]
    /// reports how many pins took effect.
    pub fn with_affinity(cores: &[usize]) -> Self {
        assert!(!cores.is_empty(), "thread pool needs at least one worker");
        Self::spawn(cores.len(), Some(cores.to_vec()))
    }

    fn spawn(n: usize, cores: Option<Vec<usize>>) -> Self {
        let pinning = cores.is_some();
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                outstanding: 0,
                panic: None,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            work_done: Condvar::new(),
            pinned: AtomicUsize::new(0),
        });
        let handles = (0..n)
            .map(|tid| {
                let shared = Arc::clone(&shared);
                let core = cores.as_ref().map(|c| c[tid]);
                std::thread::Builder::new()
                    .name(format!("dlrm-worker-{tid}"))
                    .spawn(move || {
                        if let Some(core) = core {
                            if pin_current_thread(core) {
                                shared.pinned.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        worker_loop(tid, &shared)
                    })
                    .expect("failed to spawn pool worker")
            })
            .collect();
        let pool = ThreadPool { shared, handles, n };
        if pinning {
            // Workers pin before entering their loop, so one empty
            // broadcast makes [`Self::pinned_workers`] final on return.
            pool.broadcast(|_| {});
        }
        pool
    }

    /// The worker count [`Self::with_default_parallelism`] would use: the
    /// `DLRM_THREADS` environment override when set to a positive integer,
    /// else the OS-reported parallelism. When the OS probe fails *and* no
    /// override is set, the fallback to 1 is reported on stderr instead of
    /// silently degrading the whole compute path to a single worker.
    pub fn default_parallelism() -> usize {
        if let Ok(v) = std::env::var("DLRM_THREADS") {
            match v.trim().parse::<usize>() {
                Ok(n) if n >= 1 => return n,
                _ => eprintln!(
                    "dlrm-kernels: ignoring invalid DLRM_THREADS={v:?} (want a positive integer)"
                ),
            }
        }
        match std::thread::available_parallelism() {
            Ok(p) => p.get(),
            Err(e) => {
                eprintln!(
                    "dlrm-kernels: available_parallelism() failed ({e}); \
                     falling back to 1 worker — set DLRM_THREADS to override"
                );
                1
            }
        }
    }

    /// Pool sized by [`Self::default_parallelism`] (honours `DLRM_THREADS`).
    pub fn with_default_parallelism() -> Self {
        Self::new(Self::default_parallelism())
    }

    /// Number of worker threads.
    #[inline]
    pub fn num_threads(&self) -> usize {
        self.n
    }

    /// Workers that successfully pinned to their [`Self::with_affinity`]
    /// core (0 for unpinned pools, and on platforms without affinity
    /// support).
    pub fn pinned_workers(&self) -> usize {
        self.shared.pinned.load(Ordering::Relaxed)
    }

    /// Runs `f(thread_id)` once on every worker and waits for the team.
    ///
    /// The closure may borrow from the caller's stack: the call does not
    /// return until every worker has finished (or panicked), so the borrow
    /// outlives all uses.
    pub fn broadcast<F>(&self, f: F)
    where
        F: Fn(usize) + Send + Sync,
    {
        // Erase the closure's lifetime. SAFETY: `broadcast` blocks until
        // `outstanding == 0`, i.e. no worker can touch the job after we
        // return, and the Arc below keeps the erased pointer alive while
        // any worker still holds a clone.
        let job: Arc<dyn Fn(usize) + Send + Sync> = unsafe {
            std::mem::transmute::<Arc<dyn Fn(usize) + Send + Sync + '_>, Job>(Arc::new(f))
        };

        let mut st = self.shared.state.lock();
        debug_assert_eq!(st.outstanding, 0, "broadcast is not reentrant");
        st.job = Some(job);
        st.epoch += 1;
        st.outstanding = self.n;
        self.shared.work_ready.notify_all();
        while st.outstanding > 0 {
            self.shared.work_done.wait(&mut st);
        }
        st.job = None;
        if let Some(payload) = st.panic.take() {
            drop(st);
            std::panic::resume_unwind(payload);
        }
    }

    /// Statically partitions `0..n_items` across the team and runs
    /// `f(thread_id, range)` per worker. Ranges follow the paper's
    /// `(n·tid/T, n·(tid+1)/T)` split.
    pub fn parallel_for<F>(&self, n_items: usize, f: F)
    where
        F: Fn(usize, Range<usize>) + Send + Sync,
    {
        let t = self.n;
        self.broadcast(move |tid| {
            let range = (n_items * tid / t)..(n_items * (tid + 1) / t);
            if !range.is_empty() {
                f(tid, range);
            }
        });
    }

    /// Dynamically partitions `0..n_items` into unit tasks claimed from a
    /// shared counter — used where the paper notes static partitioning load
    /// imbalance (clustered embedding indices).
    pub fn parallel_for_dynamic<F>(&self, n_items: usize, chunk: usize, f: F)
    where
        F: Fn(usize, Range<usize>) + Send + Sync,
    {
        assert!(chunk > 0);
        let next = AtomicUsize::new(0);
        self.broadcast(move |tid| loop {
            let start = next.fetch_add(chunk, Ordering::Relaxed);
            if start >= n_items {
                break;
            }
            f(tid, start..(start + chunk).min(n_items));
        });
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
            self.shared.work_ready.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(tid: usize, shared: &Shared) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    seen_epoch = st.epoch;
                    break st.job.clone().expect("epoch advanced without a job");
                }
                shared.work_ready.wait(&mut st);
            }
        };
        let result = catch_unwind(AssertUnwindSafe(|| job(tid)));
        // Drop our Arc clone before signalling completion so the erased
        // closure is guaranteed dead by the time `broadcast` returns.
        drop(job);
        let mut st = shared.state.lock();
        if let Err(payload) = result {
            if st.panic.is_none() {
                st.panic = Some(payload);
            }
        }
        st.outstanding -= 1;
        if st.outstanding == 0 {
            shared.work_done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn broadcast_runs_once_per_thread() {
        let pool = ThreadPool::new(4);
        let hits = AtomicUsize::new(0);
        let mask = AtomicUsize::new(0);
        pool.broadcast(|tid| {
            hits.fetch_add(1, Ordering::SeqCst);
            mask.fetch_or(1 << tid, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 4);
        assert_eq!(mask.load(Ordering::SeqCst), 0b1111);
    }

    #[test]
    fn broadcast_can_borrow_stack_data() {
        let pool = ThreadPool::new(3);
        let data = [1u64, 2, 3, 4, 5, 6];
        let sum = AtomicU64::new(0);
        pool.broadcast(|tid| {
            let part: u64 = data.iter().skip(tid).step_by(3).sum();
            sum.fetch_add(part, Ordering::SeqCst);
        });
        assert_eq!(sum.load(Ordering::SeqCst), 21);
    }

    #[test]
    fn sequential_broadcasts_reuse_workers() {
        let pool = ThreadPool::new(2);
        let count = AtomicUsize::new(0);
        for _ in 0..100 {
            pool.broadcast(|_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(count.load(Ordering::SeqCst), 200);
    }

    #[test]
    fn parallel_for_covers_every_item_once() {
        let pool = ThreadPool::new(5);
        let n = 1237;
        let marks: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(n, |_tid, range| {
            for i in range {
                marks[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(marks.iter().all(|m| m.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn parallel_for_dynamic_covers_every_item_once() {
        let pool = ThreadPool::new(4);
        let n = 999;
        let marks: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for_dynamic(n, 7, |_tid, range| {
            for i in range {
                marks[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(marks.iter().all(|m| m.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn parallel_for_with_more_threads_than_items() {
        let pool = ThreadPool::new(8);
        let hits = AtomicUsize::new(0);
        pool.parallel_for(3, |_tid, range| {
            hits.fetch_add(range.len(), Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let pool = ThreadPool::new(3);
        let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.broadcast(|tid| {
                if tid == 1 {
                    panic!("worker exploded");
                }
            });
        }));
        assert!(res.is_err());
        // Pool remains usable afterwards.
        let ok = AtomicUsize::new(0);
        pool.broadcast(|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn affinity_pool_runs_jobs_and_reports_pins() {
        // Core 0 always exists; higher ids may not on small hosts — the
        // pool must run correctly either way (pinning is best-effort).
        let pool = ThreadPool::with_affinity(&[0, 0, 9999]);
        assert_eq!(pool.num_threads(), 3);
        let hits = AtomicUsize::new(0);
        pool.broadcast(|_| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 3);
        if cfg!(all(target_os = "linux", target_arch = "x86_64")) {
            assert!(
                pool.pinned_workers() >= 2,
                "pinning to core 0 must succeed on linux"
            );
        }
        // Unpinned pools report zero pins.
        assert_eq!(ThreadPool::new(2).pinned_workers(), 0);
    }

    #[test]
    fn default_parallelism_honors_env_override() {
        // This is the only test touching DLRM_THREADS, so the process-wide
        // env mutation cannot race another test.
        std::env::set_var("DLRM_THREADS", "3");
        assert_eq!(ThreadPool::default_parallelism(), 3);
        let pool = ThreadPool::with_default_parallelism();
        assert_eq!(pool.num_threads(), 3);
        // Invalid overrides are ignored, not honored as 0/garbage.
        std::env::set_var("DLRM_THREADS", "0");
        let n0 = ThreadPool::default_parallelism();
        std::env::set_var("DLRM_THREADS", "lots");
        let n1 = ThreadPool::default_parallelism();
        std::env::remove_var("DLRM_THREADS");
        let os = ThreadPool::default_parallelism();
        assert!(os >= 1);
        assert_eq!(n0, os, "DLRM_THREADS=0 must fall back to the OS count");
        assert_eq!(n1, os, "non-numeric DLRM_THREADS must fall back");
    }

    #[test]
    fn single_thread_pool_works() {
        let pool = ThreadPool::new(1);
        let mut out = 0u64;
        let cell = parking_lot::Mutex::new(&mut out);
        pool.broadcast(|_| {
            **cell.lock() += 42;
        });
        assert_eq!(out, 42);
    }
}
