//! GEMM kernels in the three tiers of Figure 5.
//!
//! | Tier | Paper analogue | Module |
//! |---|---|---|
//! | naive triple loop | correctness reference | [`naive`] |
//! | flat parallel GEMM | PyTorch calling multi-threaded MKL on 2-D tensors | [`flat`] |
//! | blocked batch-reduce GEMM | "this work" (Algorithm 5) | [`blocked`] |
//!
//! The blocked tier operates on the 4-D layouts from `dlrm_tensor::blocked`
//! and dispatches at runtime to AVX-512, AVX2 or scalar microkernels
//! ([`micro`]).

pub mod blocked;
pub mod flat;
pub mod micro;
pub mod naive;

pub use blocked::{
    fc_backward_data, fc_backward_data_fused, fc_backward_weights, fc_backward_weights_fused,
    fc_forward, fc_forward_fused,
};
pub use flat::{par_gemm_nn, par_gemm_nt, par_gemm_tn};
pub use micro::{detect_isa, set_isa_override, Isa};
pub use naive::{gemm_nn, gemm_nt, gemm_tn};

/// Floating-point operations in one `K×C · C×N` GEMM (multiply + add).
pub fn gemm_flops(k: usize, c: usize, n: usize) -> u64 {
    2 * k as u64 * c as u64 * n as u64
}

/// FLOPs of one fully-connected training iteration (fwd + bwd-data +
/// bwd-weights), as used when reporting Figure 5 efficiency.
pub fn fc_training_flops(k: usize, c: usize, n: usize) -> u64 {
    3 * gemm_flops(k, c, n)
}

/// A `*mut f32` that may be smuggled into a thread team. Each thread must
/// only touch a disjoint region; the kernels in this crate uphold that by
/// partitioning output *blocks* across threads.
#[derive(Clone, Copy)]
pub(crate) struct SendMutPtr(pub *mut f32);
// SAFETY: see type docs — disjoint-write discipline is maintained by every
// kernel that constructs one of these.
unsafe impl Send for SendMutPtr {}
unsafe impl Sync for SendMutPtr {}

impl SendMutPtr {
    /// Returns the raw pointer. Taking it through a method (rather than the
    /// field) makes closures capture the whole `Send + Sync` wrapper under
    /// edition-2021 disjoint capture rules.
    #[inline]
    pub(crate) fn get(self) -> *mut f32 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flop_counts() {
        assert_eq!(gemm_flops(2, 3, 4), 48);
        assert_eq!(fc_training_flops(2, 3, 4), 144);
    }
}
