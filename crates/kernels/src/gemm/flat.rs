//! Flat parallel GEMM — the "large multi-threaded GEMM call" tier.
//!
//! This models what PyTorch does for `nn.Linear`: hand the whole row-major
//! 2-D problem to one multi-threaded GEMM. It is cache-blocked and
//! vectorizes, but performs no layout transformation and parallelizes only
//! the output-row dimension — exactly the structure whose efficiency
//! Figure 5 measures at ~61% of peak vs. ~72% for the blocked
//! batch-reduce formulation.

use super::SendMutPtr;
use crate::threadpool::ThreadPool;
use dlrm_tensor::Matrix;

/// Cache block along the reduction dimension: 256 floats = 1 KiB per row,
/// keeps a block of B rows resident in L1/L2 while A streams.
const KC: usize = 256;

/// `C += A · B` for row-major `A (m×k)`, `B (k×n)`, `C (m×n)`, parallel
/// over rows of `C`.
pub fn par_gemm_nn(pool: &ThreadPool, a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (m, ka) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(ka, kb, "par_gemm_nn inner dimension mismatch");
    assert_eq!(c.shape(), (m, n), "par_gemm_nn output shape mismatch");
    let c_base = SendMutPtr(c.as_mut_slice().as_mut_ptr());

    pool.parallel_for(m, |_tid, rows| {
        for pc in (0..ka).step_by(KC) {
            let pend = (pc + KC).min(ka);
            for i in rows.clone() {
                let a_row = &a.row(i)[pc..pend];
                // SAFETY: each row i is owned by exactly one thread.
                let c_row = unsafe { std::slice::from_raw_parts_mut(c_base.get().add(i * n), n) };
                for (off, &a_ip) in a_row.iter().enumerate() {
                    let b_row = b.row(pc + off);
                    for (c_ij, &b_pj) in c_row.iter_mut().zip(b_row) {
                        *c_ij += a_ip * b_pj;
                    }
                }
            }
        }
    });
}

/// `C += Aᵀ · B` for row-major `A (k×m)`, `B (k×n)`, `C (m×n)`, parallel
/// over rows of `C`.
pub fn par_gemm_tn(pool: &ThreadPool, a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (ka, m) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(ka, kb, "par_gemm_tn inner dimension mismatch");
    assert_eq!(c.shape(), (m, n), "par_gemm_tn output shape mismatch");
    let c_base = SendMutPtr(c.as_mut_slice().as_mut_ptr());

    pool.parallel_for(m, |_tid, rows| {
        for pc in (0..ka).step_by(KC) {
            let pend = (pc + KC).min(ka);
            for i in rows.clone() {
                // SAFETY: each row i is owned by exactly one thread.
                let c_row = unsafe { std::slice::from_raw_parts_mut(c_base.get().add(i * n), n) };
                for p in pc..pend {
                    let a_pi = a[(p, i)];
                    let b_row = b.row(p);
                    for (c_ij, &b_pj) in c_row.iter_mut().zip(b_row) {
                        *c_ij += a_pi * b_pj;
                    }
                }
            }
        }
    });
}

/// `C += A · Bᵀ` for row-major `A (m×k)`, `B (n×k)`, `C (m×n)`, parallel
/// over rows of `C`.
pub fn par_gemm_nt(pool: &ThreadPool, a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (m, ka) = a.shape();
    let (n, kb) = b.shape();
    assert_eq!(ka, kb, "par_gemm_nt inner dimension mismatch");
    assert_eq!(c.shape(), (m, n), "par_gemm_nt output shape mismatch");
    let c_base = SendMutPtr(c.as_mut_slice().as_mut_ptr());

    pool.parallel_for(m, |_tid, rows| {
        for i in rows {
            let a_row = a.row(i);
            // SAFETY: each row i is owned by exactly one thread.
            let c_row = unsafe { std::slice::from_raw_parts_mut(c_base.get().add(i * n), n) };
            for (j, c_ij) in c_row.iter_mut().enumerate() {
                let b_row = b.row(j);
                let mut acc = 0.0f32;
                for (&x, &y) in a_row.iter().zip(b_row) {
                    acc += x * y;
                }
                *c_ij += acc;
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::naive;
    use dlrm_tensor::assert_allclose;
    use dlrm_tensor::init::{seeded_rng, uniform};

    fn rand(r: usize, c: usize, seed: u64) -> Matrix {
        uniform(r, c, -1.0, 1.0, &mut seeded_rng(seed, 0))
    }

    #[test]
    fn nn_matches_naive() {
        let pool = ThreadPool::new(4);
        let (a, b) = (rand(37, 300, 1), rand(300, 29, 2));
        let mut got = Matrix::zeros(37, 29);
        par_gemm_nn(&pool, &a, &b, &mut got);
        let mut want = Matrix::zeros(37, 29);
        naive::gemm_nn(&a, &b, &mut want);
        assert_allclose(got.as_slice(), want.as_slice(), 1e-4, "par nn");
    }

    #[test]
    fn nn_crosses_kc_boundary() {
        // k=700 > 2*KC exercises multiple reduction blocks.
        let pool = ThreadPool::new(2);
        let (a, b) = (rand(5, 700, 3), rand(700, 11, 4));
        let mut got = Matrix::zeros(5, 11);
        par_gemm_nn(&pool, &a, &b, &mut got);
        let mut want = Matrix::zeros(5, 11);
        naive::gemm_nn(&a, &b, &mut want);
        assert_allclose(got.as_slice(), want.as_slice(), 1e-4, "kc blocks");
    }

    #[test]
    fn tn_matches_naive() {
        let pool = ThreadPool::new(3);
        let (a, b) = (rand(64, 17, 5), rand(64, 23, 6));
        let mut got = Matrix::zeros(17, 23);
        par_gemm_tn(&pool, &a, &b, &mut got);
        let mut want = Matrix::zeros(17, 23);
        naive::gemm_tn(&a, &b, &mut want);
        assert_allclose(got.as_slice(), want.as_slice(), 1e-4, "par tn");
    }

    #[test]
    fn nt_matches_naive() {
        let pool = ThreadPool::new(3);
        let (a, b) = (rand(19, 45, 7), rand(31, 45, 8));
        let mut got = Matrix::zeros(19, 31);
        par_gemm_nt(&pool, &a, &b, &mut got);
        let mut want = Matrix::zeros(19, 31);
        naive::gemm_nt(&a, &b, &mut want);
        assert_allclose(got.as_slice(), want.as_slice(), 1e-4, "par nt");
    }

    #[test]
    fn accumulation_preserved() {
        let pool = ThreadPool::new(2);
        let a = rand(4, 4, 9);
        let b = rand(4, 4, 10);
        let mut got = Matrix::from_fn(4, 4, |_, _| 1.0);
        par_gemm_nn(&pool, &a, &b, &mut got);
        let mut want = Matrix::from_fn(4, 4, |_, _| 1.0);
        naive::gemm_nn(&a, &b, &mut want);
        assert_allclose(got.as_slice(), want.as_slice(), 1e-4, "accumulate");
    }
}
