//! Naive single-threaded GEMM reference kernels.
//!
//! These are the ground truth every optimized kernel is validated against,
//! and the building block of the deliberately unoptimized "reference DLRM"
//! implementation (the Figure 7 baseline). Loops are written in the
//! textbook order with no blocking.

use dlrm_tensor::Matrix;

/// `C += A · B` for row-major `A (m×k)`, `B (k×n)`, `C (m×n)`.
pub fn gemm_nn(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (m, ka) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(ka, kb, "gemm_nn inner dimension mismatch");
    assert_eq!(c.shape(), (m, n), "gemm_nn output shape mismatch");
    for i in 0..m {
        let a_row = a.row(i);
        let c_row = c.row_mut(i);
        for (p, &a_ip) in a_row.iter().enumerate() {
            let b_row = b.row(p);
            for (c_ij, &b_pj) in c_row.iter_mut().zip(b_row) {
                *c_ij += a_ip * b_pj;
            }
        }
    }
}

/// `C += Aᵀ · B` for row-major `A (k×m)`, `B (k×n)`, `C (m×n)`.
pub fn gemm_tn(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (ka, m) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(ka, kb, "gemm_tn inner dimension mismatch");
    assert_eq!(c.shape(), (m, n), "gemm_tn output shape mismatch");
    for p in 0..ka {
        let a_row = a.row(p);
        let b_row = b.row(p);
        for (i, &a_pi) in a_row.iter().enumerate() {
            let c_row = c.row_mut(i);
            for (c_ij, &b_pj) in c_row.iter_mut().zip(b_row) {
                *c_ij += a_pi * b_pj;
            }
        }
    }
}

/// `C += A · Bᵀ` for row-major `A (m×k)`, `B (n×k)`, `C (m×n)`.
pub fn gemm_nt(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (m, ka) = a.shape();
    let (n, kb) = b.shape();
    assert_eq!(ka, kb, "gemm_nt inner dimension mismatch");
    assert_eq!(c.shape(), (m, n), "gemm_nt output shape mismatch");
    for i in 0..m {
        let a_row = a.row(i);
        let c_row = c.row_mut(i);
        for (c_ij, j) in c_row.iter_mut().zip(0..n) {
            let b_row = b.row(j);
            let mut acc = 0.0f32;
            for (&x, &y) in a_row.iter().zip(b_row) {
                acc += x * y;
            }
            *c_ij += acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrm_tensor::assert_allclose;
    use dlrm_tensor::init::{seeded_rng, uniform};

    #[test]
    fn identity_times_matrix() {
        let eye = Matrix::from_fn(3, 3, |r, c| if r == c { 1.0 } else { 0.0 });
        let b = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
        let mut y = Matrix::zeros(3, 2);
        gemm_nn(&eye, &b, &mut y);
        assert_eq!(y.as_slice(), b.as_slice());
    }

    #[test]
    fn known_product() {
        let a = Matrix::from_slice(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_slice(2, 2, &[5.0, 6.0, 7.0, 8.0]);
        let mut c = Matrix::zeros(2, 2);
        gemm_nn(&a, &b, &mut c);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn accumulates_into_c() {
        let a = Matrix::from_slice(1, 1, &[2.0]);
        let b = Matrix::from_slice(1, 1, &[3.0]);
        let mut c = Matrix::from_slice(1, 1, &[10.0]);
        gemm_nn(&a, &b, &mut c);
        assert_eq!(c.as_slice(), &[16.0]);
    }

    #[test]
    fn tn_matches_explicit_transpose() {
        let mut rng = seeded_rng(11, 0);
        let a = uniform(6, 4, -1.0, 1.0, &mut rng);
        let b = uniform(6, 5, -1.0, 1.0, &mut rng);
        let mut got = Matrix::zeros(4, 5);
        gemm_tn(&a, &b, &mut got);
        let mut want = Matrix::zeros(4, 5);
        gemm_nn(&a.transposed(), &b, &mut want);
        assert_allclose(got.as_slice(), want.as_slice(), 1e-6, "gemm_tn");
    }

    #[test]
    fn nt_matches_explicit_transpose() {
        let mut rng = seeded_rng(12, 0);
        let a = uniform(3, 7, -1.0, 1.0, &mut rng);
        let b = uniform(5, 7, -1.0, 1.0, &mut rng);
        let mut got = Matrix::zeros(3, 5);
        gemm_nt(&a, &b, &mut got);
        let mut want = Matrix::zeros(3, 5);
        gemm_nn(&a, &b.transposed(), &mut want);
        assert_allclose(got.as_slice(), want.as_slice(), 1e-6, "gemm_nt");
    }

    #[test]
    #[should_panic(expected = "inner dimension")]
    fn shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let mut c = Matrix::zeros(2, 2);
        gemm_nn(&a, &b, &mut c);
    }
}
