//! Batch-reduce GEMM microkernels with runtime ISA dispatch.
//!
//! The paper's MLP kernels are built on a single primitive: the
//! *batch-reduce GEMM* (Georganas et al., IPDPS'20). The caller prepares an
//! array of A-panel and B-panel pointers and the microkernel multiplies and
//! reduces *all* of them into one output panel, amortizing the load/store of
//! the C accumulator over the whole reduction ("lines 5–9 of Algorithm 5").
//!
//! Three variants cover the three training passes (panel layouts are those
//! of `dlrm_tensor::blocked`):
//!
//! * [`brgemm_fwd`]      — `Y[bn][bk] += Σ_p X_p[bn][bc] · W_p[bc][bk]`
//! * [`brgemm_bwd_data`] — `dX[bn][bc] += Σ_p dY_p[bn][bk] · W_p[bc][bk]ᵀ`
//! * [`brgemm_bwd_wt`]   — `dW[bc][bk] += Σ_p X_p[bn][bc]ᵀ · dY_p[bn][bk]`
//!
//! Each has a scalar, an AVX2 and an AVX-512 implementation; [`detect_isa`]
//! picks the widest available at runtime and [`set_isa_override`] lets the
//! ablation benches force a tier.

use std::sync::atomic::{AtomicU8, Ordering};

/// Instruction-set tier for the microkernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Isa {
    /// Portable scalar code (still autovectorizable by LLVM).
    Scalar,
    /// 8-wide FMA via AVX2 intrinsics.
    Avx2,
    /// 16-wide FMA via AVX-512F intrinsics.
    Avx512,
}

/// 0 = undetected, 1 = scalar, 2 = avx2, 3 = avx512.
static ISA_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Forces all subsequent microkernel calls onto a tier (or back to
/// auto-detection with `None`). Used by the ISA-ablation bench.
pub fn set_isa_override(isa: Option<Isa>) {
    let v = match isa {
        None => 0,
        Some(Isa::Scalar) => 1,
        Some(Isa::Avx2) => 2,
        Some(Isa::Avx512) => 3,
    };
    ISA_OVERRIDE.store(v, Ordering::Relaxed);
}

/// Returns the widest ISA supported by this CPU (or the forced override).
pub fn detect_isa() -> Isa {
    match ISA_OVERRIDE.load(Ordering::Relaxed) {
        1 => return Isa::Scalar,
        2 => return Isa::Avx2,
        3 => return Isa::Avx512,
        _ => {}
    }
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx512f") {
            return Isa::Avx512;
        }
        if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
            return Isa::Avx2;
        }
    }
    Isa::Scalar
}

/// Panel-size description shared by all three kernels.
#[derive(Debug, Clone, Copy)]
pub struct PanelDims {
    /// Minibatch block.
    pub bn: usize,
    /// Input-feature block.
    pub bc: usize,
    /// Output-feature block.
    pub bk: usize,
}

// ---------------------------------------------------------------------------
// Forward: Y[bn][bk] += sum_p X_p[bn][bc] * W_p[bc][bk]
// ---------------------------------------------------------------------------

/// Batch-reduce forward microkernel.
///
/// # Safety
/// Every pointer in `x_panels` must be valid for `bn*bc` reads, every
/// pointer in `w_panels` for `bc*bk` reads, and `y` must hold `bn*bk`
/// elements. Panels must not alias `y`.
pub unsafe fn brgemm_fwd(
    isa: Isa,
    w_panels: &[*const f32],
    x_panels: &[*const f32],
    y: *mut f32,
    d: PanelDims,
) {
    debug_assert_eq!(w_panels.len(), x_panels.len());
    match isa {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 if d.bk.is_multiple_of(32) => brgemm_fwd_avx512_x2(w_panels, x_panels, y, d),
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 if d.bk.is_multiple_of(16) => brgemm_fwd_avx512(w_panels, x_panels, y, d),
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 | Isa::Avx512 if d.bk.is_multiple_of(8) => {
            brgemm_fwd_avx2(w_panels, x_panels, y, d)
        }
        _ => brgemm_fwd_scalar(w_panels, x_panels, y, d),
    }
}

unsafe fn brgemm_fwd_scalar(
    w_panels: &[*const f32],
    x_panels: &[*const f32],
    y: *mut f32,
    d: PanelDims,
) {
    let PanelDims { bn, bc, bk } = d;
    for p in 0..w_panels.len() {
        let w = w_panels[p];
        let x = x_panels[p];
        for r_n in 0..bn {
            let x_row = std::slice::from_raw_parts(x.add(r_n * bc), bc);
            let y_row = std::slice::from_raw_parts_mut(y.add(r_n * bk), bk);
            for (r_c, &xv) in x_row.iter().enumerate() {
                let w_row = std::slice::from_raw_parts(w.add(r_c * bk), bk);
                for (yv, &wv) in y_row.iter_mut().zip(w_row) {
                    *yv += xv * wv;
                }
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn brgemm_fwd_avx2(
    w_panels: &[*const f32],
    x_panels: &[*const f32],
    y: *mut f32,
    d: PanelDims,
) {
    use std::arch::x86_64::*;
    let PanelDims { bn, bc, bk } = d;
    debug_assert_eq!(bk % 8, 0);
    for r_n in 0..bn {
        for kb in (0..bk).step_by(8) {
            let yp = y.add(r_n * bk + kb);
            let mut acc = _mm256_loadu_ps(yp);
            for p in 0..w_panels.len() {
                let w = w_panels[p];
                let x = x_panels[p].add(r_n * bc);
                for r_c in 0..bc {
                    let xv = _mm256_set1_ps(*x.add(r_c));
                    let wv = _mm256_loadu_ps(w.add(r_c * bk + kb));
                    acc = _mm256_fmadd_ps(xv, wv, acc);
                }
            }
            _mm256_storeu_ps(yp, acc);
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn brgemm_fwd_avx512(
    w_panels: &[*const f32],
    x_panels: &[*const f32],
    y: *mut f32,
    d: PanelDims,
) {
    use std::arch::x86_64::*;
    let PanelDims { bn, bc, bk } = d;
    debug_assert_eq!(bk % 16, 0);
    // Register-block 4 minibatch rows x one 16-wide K vector: the C
    // accumulators stay in zmm registers across the whole batch reduction.
    let n4 = bn / 4 * 4;
    for kb in (0..bk).step_by(16) {
        let mut r_n = 0;
        while r_n < n4 {
            let y0 = y.add(r_n * bk + kb);
            let y1 = y.add((r_n + 1) * bk + kb);
            let y2 = y.add((r_n + 2) * bk + kb);
            let y3 = y.add((r_n + 3) * bk + kb);
            let mut a0 = _mm512_loadu_ps(y0);
            let mut a1 = _mm512_loadu_ps(y1);
            let mut a2 = _mm512_loadu_ps(y2);
            let mut a3 = _mm512_loadu_ps(y3);
            for p in 0..w_panels.len() {
                let w = w_panels[p];
                let x = x_panels[p];
                let x0 = x.add(r_n * bc);
                let x1 = x.add((r_n + 1) * bc);
                let x2 = x.add((r_n + 2) * bc);
                let x3 = x.add((r_n + 3) * bc);
                for r_c in 0..bc {
                    let wv = _mm512_loadu_ps(w.add(r_c * bk + kb));
                    a0 = _mm512_fmadd_ps(_mm512_set1_ps(*x0.add(r_c)), wv, a0);
                    a1 = _mm512_fmadd_ps(_mm512_set1_ps(*x1.add(r_c)), wv, a1);
                    a2 = _mm512_fmadd_ps(_mm512_set1_ps(*x2.add(r_c)), wv, a2);
                    a3 = _mm512_fmadd_ps(_mm512_set1_ps(*x3.add(r_c)), wv, a3);
                }
            }
            _mm512_storeu_ps(y0, a0);
            _mm512_storeu_ps(y1, a1);
            _mm512_storeu_ps(y2, a2);
            _mm512_storeu_ps(y3, a3);
            r_n += 4;
        }
        // Remainder rows.
        while r_n < bn {
            let yp = y.add(r_n * bk + kb);
            let mut acc = _mm512_loadu_ps(yp);
            for p in 0..w_panels.len() {
                let w = w_panels[p];
                let x = x_panels[p].add(r_n * bc);
                for r_c in 0..bc {
                    let wv = _mm512_loadu_ps(w.add(r_c * bk + kb));
                    acc = _mm512_fmadd_ps(_mm512_set1_ps(*x.add(r_c)), wv, acc);
                }
            }
            _mm512_storeu_ps(yp, acc);
            r_n += 1;
        }
    }
}

/// Widened AVX-512 forward: 4 minibatch rows × **2** 16-wide K vectors per
/// register block (8 zmm accumulators vs 4), halving the number of
/// X-broadcasts per FMA. Each output element sees exactly the same FMA
/// chain (`p` outer, `r_c` inner) as [`brgemm_fwd_avx512`], so the result
/// is **bitwise identical** — this is a register-pressure optimization, not
/// a reassociation.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn brgemm_fwd_avx512_x2(
    w_panels: &[*const f32],
    x_panels: &[*const f32],
    y: *mut f32,
    d: PanelDims,
) {
    use std::arch::x86_64::*;
    let PanelDims { bn, bc, bk } = d;
    debug_assert_eq!(bk % 32, 0);
    let n4 = bn / 4 * 4;
    for kb in (0..bk).step_by(32) {
        let mut r_n = 0;
        while r_n < n4 {
            let y0 = y.add(r_n * bk + kb);
            let y1 = y.add((r_n + 1) * bk + kb);
            let y2 = y.add((r_n + 2) * bk + kb);
            let y3 = y.add((r_n + 3) * bk + kb);
            let mut a0l = _mm512_loadu_ps(y0);
            let mut a0h = _mm512_loadu_ps(y0.add(16));
            let mut a1l = _mm512_loadu_ps(y1);
            let mut a1h = _mm512_loadu_ps(y1.add(16));
            let mut a2l = _mm512_loadu_ps(y2);
            let mut a2h = _mm512_loadu_ps(y2.add(16));
            let mut a3l = _mm512_loadu_ps(y3);
            let mut a3h = _mm512_loadu_ps(y3.add(16));
            for p in 0..w_panels.len() {
                let w = w_panels[p];
                let x = x_panels[p];
                let x0 = x.add(r_n * bc);
                let x1 = x.add((r_n + 1) * bc);
                let x2 = x.add((r_n + 2) * bc);
                let x3 = x.add((r_n + 3) * bc);
                for r_c in 0..bc {
                    let wl = _mm512_loadu_ps(w.add(r_c * bk + kb));
                    let wh = _mm512_loadu_ps(w.add(r_c * bk + kb + 16));
                    let b0 = _mm512_set1_ps(*x0.add(r_c));
                    let b1 = _mm512_set1_ps(*x1.add(r_c));
                    let b2 = _mm512_set1_ps(*x2.add(r_c));
                    let b3 = _mm512_set1_ps(*x3.add(r_c));
                    a0l = _mm512_fmadd_ps(b0, wl, a0l);
                    a0h = _mm512_fmadd_ps(b0, wh, a0h);
                    a1l = _mm512_fmadd_ps(b1, wl, a1l);
                    a1h = _mm512_fmadd_ps(b1, wh, a1h);
                    a2l = _mm512_fmadd_ps(b2, wl, a2l);
                    a2h = _mm512_fmadd_ps(b2, wh, a2h);
                    a3l = _mm512_fmadd_ps(b3, wl, a3l);
                    a3h = _mm512_fmadd_ps(b3, wh, a3h);
                }
            }
            _mm512_storeu_ps(y0, a0l);
            _mm512_storeu_ps(y0.add(16), a0h);
            _mm512_storeu_ps(y1, a1l);
            _mm512_storeu_ps(y1.add(16), a1h);
            _mm512_storeu_ps(y2, a2l);
            _mm512_storeu_ps(y2.add(16), a2h);
            _mm512_storeu_ps(y3, a3l);
            _mm512_storeu_ps(y3.add(16), a3h);
            r_n += 4;
        }
        // Remainder rows: 1 row × 2 K vectors.
        while r_n < bn {
            let yp = y.add(r_n * bk + kb);
            let mut al = _mm512_loadu_ps(yp);
            let mut ah = _mm512_loadu_ps(yp.add(16));
            for p in 0..w_panels.len() {
                let w = w_panels[p];
                let x = x_panels[p].add(r_n * bc);
                for r_c in 0..bc {
                    let b = _mm512_set1_ps(*x.add(r_c));
                    al = _mm512_fmadd_ps(b, _mm512_loadu_ps(w.add(r_c * bk + kb)), al);
                    ah = _mm512_fmadd_ps(b, _mm512_loadu_ps(w.add(r_c * bk + kb + 16)), ah);
                }
            }
            _mm512_storeu_ps(yp, al);
            _mm512_storeu_ps(yp.add(16), ah);
            r_n += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Backward by data: dX[bn][bc] += sum_p dY_p[bn][bk] * W_p[bc][bk]^T
// ---------------------------------------------------------------------------

/// Batch-reduce backward-by-data microkernel.
///
/// # Safety
/// Every pointer in `dy_panels` must be valid for `bn*bk` reads, every
/// pointer in `w_panels` for `bc*bk` reads, and `dx` must hold `bn*bc`
/// elements. Panels must not alias `dx`.
pub unsafe fn brgemm_bwd_data(
    isa: Isa,
    w_panels: &[*const f32],
    dy_panels: &[*const f32],
    dx: *mut f32,
    d: PanelDims,
) {
    debug_assert_eq!(w_panels.len(), dy_panels.len());
    match isa {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 if d.bk.is_multiple_of(16) => {
            brgemm_bwd_data_avx512(w_panels, dy_panels, dx, d)
        }
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 | Isa::Avx512 if d.bk.is_multiple_of(8) => {
            brgemm_bwd_data_avx2(w_panels, dy_panels, dx, d)
        }
        _ => brgemm_bwd_data_scalar(w_panels, dy_panels, dx, d),
    }
}

unsafe fn brgemm_bwd_data_scalar(
    w_panels: &[*const f32],
    dy_panels: &[*const f32],
    dx: *mut f32,
    d: PanelDims,
) {
    let PanelDims { bn, bc, bk } = d;
    for p in 0..w_panels.len() {
        let w = w_panels[p];
        let dy = dy_panels[p];
        for r_n in 0..bn {
            let dy_row = std::slice::from_raw_parts(dy.add(r_n * bk), bk);
            let dx_row = std::slice::from_raw_parts_mut(dx.add(r_n * bc), bc);
            for (r_c, dxv) in dx_row.iter_mut().enumerate() {
                let w_row = std::slice::from_raw_parts(w.add(r_c * bk), bk);
                let mut acc = 0.0f32;
                for (&dyv, &wv) in dy_row.iter().zip(w_row) {
                    acc += dyv * wv;
                }
                *dxv += acc;
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn brgemm_bwd_data_avx2(
    w_panels: &[*const f32],
    dy_panels: &[*const f32],
    dx: *mut f32,
    d: PanelDims,
) {
    use std::arch::x86_64::*;
    let PanelDims { bn, bc, bk } = d;
    for r_n in 0..bn {
        for r_c in 0..bc {
            let mut acc = _mm256_setzero_ps();
            for p in 0..w_panels.len() {
                let w = w_panels[p].add(r_c * bk);
                let dy = dy_panels[p].add(r_n * bk);
                for kb in (0..bk).step_by(8) {
                    acc = _mm256_fmadd_ps(
                        _mm256_loadu_ps(dy.add(kb)),
                        _mm256_loadu_ps(w.add(kb)),
                        acc,
                    );
                }
            }
            // Horizontal sum of 8 lanes.
            let hi = _mm256_extractf128_ps::<1>(acc);
            let lo = _mm256_castps256_ps128(acc);
            let s = _mm_add_ps(hi, lo);
            let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
            let s = _mm_add_ss(s, _mm_shuffle_ps::<1>(s, s));
            *dx.add(r_n * bc + r_c) += _mm_cvtss_f32(s);
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn brgemm_bwd_data_avx512(
    w_panels: &[*const f32],
    dy_panels: &[*const f32],
    dx: *mut f32,
    d: PanelDims,
) {
    use std::arch::x86_64::*;
    let PanelDims { bn, bc, bk } = d;
    for r_n in 0..bn {
        for r_c in 0..bc {
            let mut acc = _mm512_setzero_ps();
            for p in 0..w_panels.len() {
                let w = w_panels[p].add(r_c * bk);
                let dy = dy_panels[p].add(r_n * bk);
                for kb in (0..bk).step_by(16) {
                    acc = _mm512_fmadd_ps(
                        _mm512_loadu_ps(dy.add(kb)),
                        _mm512_loadu_ps(w.add(kb)),
                        acc,
                    );
                }
            }
            *dx.add(r_n * bc + r_c) += _mm512_reduce_add_ps(acc);
        }
    }
}

/// Batch-reduce backward-by-data with the upstream layer's ReLU mask fused
/// into the accumulator writeback: after `dX[bn][bc] += Σ_p dY_p·W_pᵀ`
/// completes for an element, it is zeroed wherever the forward output
/// `mask[bn][bc]` (same panel layout as `dx`) was non-positive. Bitwise
/// identical to [`brgemm_bwd_data`] followed by a separate
/// `relu_backward(mask, dx)` sweep, because each element receives its full
/// accumulation before the predicate fires — but it saves one read+write
/// sweep of `dX` while the panel is still hot in cache.
///
/// # Safety
/// Same as [`brgemm_bwd_data`], plus `mask` must be valid for `bn*bc` reads
/// and must not alias `dx`.
pub unsafe fn brgemm_bwd_data_relu(
    isa: Isa,
    w_panels: &[*const f32],
    dy_panels: &[*const f32],
    dx: *mut f32,
    mask: *const f32,
    d: PanelDims,
) {
    debug_assert_eq!(w_panels.len(), dy_panels.len());
    match isa {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 if d.bk.is_multiple_of(16) => {
            brgemm_bwd_data_relu_avx512(w_panels, dy_panels, dx, mask, d)
        }
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 | Isa::Avx512 if d.bk.is_multiple_of(8) => {
            brgemm_bwd_data_relu_avx2(w_panels, dy_panels, dx, mask, d)
        }
        _ => {
            // The scalar kernel accumulates dX across panels *in memory*,
            // so the mask is a tail sweep after the full reduction — same
            // bits, the fusion here is only skipping a function boundary.
            brgemm_bwd_data_scalar(w_panels, dy_panels, dx, d);
            for i in 0..d.bn * d.bc {
                if *mask.add(i) <= 0.0 {
                    *dx.add(i) = 0.0;
                }
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn brgemm_bwd_data_relu_avx2(
    w_panels: &[*const f32],
    dy_panels: &[*const f32],
    dx: *mut f32,
    mask: *const f32,
    d: PanelDims,
) {
    use std::arch::x86_64::*;
    let PanelDims { bn, bc, bk } = d;
    for r_n in 0..bn {
        for r_c in 0..bc {
            let idx = r_n * bc + r_c;
            if *mask.add(idx) <= 0.0 {
                *dx.add(idx) = 0.0;
                continue;
            }
            let mut acc = _mm256_setzero_ps();
            for p in 0..w_panels.len() {
                let w = w_panels[p].add(r_c * bk);
                let dy = dy_panels[p].add(r_n * bk);
                for kb in (0..bk).step_by(8) {
                    acc = _mm256_fmadd_ps(
                        _mm256_loadu_ps(dy.add(kb)),
                        _mm256_loadu_ps(w.add(kb)),
                        acc,
                    );
                }
            }
            let hi = _mm256_extractf128_ps::<1>(acc);
            let lo = _mm256_castps256_ps128(acc);
            let s = _mm_add_ps(hi, lo);
            let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
            let s = _mm_add_ss(s, _mm_shuffle_ps::<1>(s, s));
            *dx.add(idx) += _mm_cvtss_f32(s);
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn brgemm_bwd_data_relu_avx512(
    w_panels: &[*const f32],
    dy_panels: &[*const f32],
    dx: *mut f32,
    mask: *const f32,
    d: PanelDims,
) {
    use std::arch::x86_64::*;
    let PanelDims { bn, bc, bk } = d;
    for r_n in 0..bn {
        for r_c in 0..bc {
            let idx = r_n * bc + r_c;
            if *mask.add(idx) <= 0.0 {
                *dx.add(idx) = 0.0;
                continue;
            }
            let mut acc = _mm512_setzero_ps();
            for p in 0..w_panels.len() {
                let w = w_panels[p].add(r_c * bk);
                let dy = dy_panels[p].add(r_n * bk);
                for kb in (0..bk).step_by(16) {
                    acc = _mm512_fmadd_ps(
                        _mm512_loadu_ps(dy.add(kb)),
                        _mm512_loadu_ps(w.add(kb)),
                        acc,
                    );
                }
            }
            *dx.add(idx) += _mm512_reduce_add_ps(acc);
        }
    }
}

// ---------------------------------------------------------------------------
// Backward by weights: dW[bc][bk] += sum_p X_p[bn][bc]^T * dY_p[bn][bk]
// ---------------------------------------------------------------------------

/// Batch-reduce backward-by-weights microkernel.
///
/// # Safety
/// Every pointer in `x_panels` must be valid for `bn*bc` reads, every
/// pointer in `dy_panels` for `bn*bk` reads, and `dw` must hold `bc*bk`
/// elements. Panels must not alias `dw`.
pub unsafe fn brgemm_bwd_wt(
    isa: Isa,
    x_panels: &[*const f32],
    dy_panels: &[*const f32],
    dw: *mut f32,
    d: PanelDims,
) {
    debug_assert_eq!(x_panels.len(), dy_panels.len());
    match isa {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 if d.bk.is_multiple_of(16) => brgemm_bwd_wt_avx512(x_panels, dy_panels, dw, d),
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 | Isa::Avx512 if d.bk.is_multiple_of(8) => {
            brgemm_bwd_wt_avx2(x_panels, dy_panels, dw, d)
        }
        _ => brgemm_bwd_wt_scalar(x_panels, dy_panels, dw, d),
    }
}

unsafe fn brgemm_bwd_wt_scalar(
    x_panels: &[*const f32],
    dy_panels: &[*const f32],
    dw: *mut f32,
    d: PanelDims,
) {
    let PanelDims { bn, bc, bk } = d;
    for p in 0..x_panels.len() {
        let x = x_panels[p];
        let dy = dy_panels[p];
        for r_n in 0..bn {
            let x_row = std::slice::from_raw_parts(x.add(r_n * bc), bc);
            let dy_row = std::slice::from_raw_parts(dy.add(r_n * bk), bk);
            for (r_c, &xv) in x_row.iter().enumerate() {
                let dw_row = std::slice::from_raw_parts_mut(dw.add(r_c * bk), bk);
                for (dwv, &dyv) in dw_row.iter_mut().zip(dy_row) {
                    *dwv += xv * dyv;
                }
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn brgemm_bwd_wt_avx2(
    x_panels: &[*const f32],
    dy_panels: &[*const f32],
    dw: *mut f32,
    d: PanelDims,
) {
    use std::arch::x86_64::*;
    let PanelDims { bn, bc, bk } = d;
    for r_c in 0..bc {
        for kb in (0..bk).step_by(8) {
            let dwp = dw.add(r_c * bk + kb);
            let mut acc = _mm256_loadu_ps(dwp);
            for p in 0..x_panels.len() {
                let x = x_panels[p];
                let dy = dy_panels[p];
                for r_n in 0..bn {
                    acc = _mm256_fmadd_ps(
                        _mm256_set1_ps(*x.add(r_n * bc + r_c)),
                        _mm256_loadu_ps(dy.add(r_n * bk + kb)),
                        acc,
                    );
                }
            }
            _mm256_storeu_ps(dwp, acc);
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn brgemm_bwd_wt_avx512(
    x_panels: &[*const f32],
    dy_panels: &[*const f32],
    dw: *mut f32,
    d: PanelDims,
) {
    use std::arch::x86_64::*;
    let PanelDims { bn, bc, bk } = d;
    let c4 = bc / 4 * 4;
    for kb in (0..bk).step_by(16) {
        let mut r_c = 0;
        while r_c < c4 {
            let p0 = dw.add(r_c * bk + kb);
            let p1 = dw.add((r_c + 1) * bk + kb);
            let p2 = dw.add((r_c + 2) * bk + kb);
            let p3 = dw.add((r_c + 3) * bk + kb);
            let mut a0 = _mm512_loadu_ps(p0);
            let mut a1 = _mm512_loadu_ps(p1);
            let mut a2 = _mm512_loadu_ps(p2);
            let mut a3 = _mm512_loadu_ps(p3);
            for p in 0..x_panels.len() {
                let x = x_panels[p];
                let dy = dy_panels[p];
                for r_n in 0..bn {
                    let dyv = _mm512_loadu_ps(dy.add(r_n * bk + kb));
                    let xr = x.add(r_n * bc + r_c);
                    a0 = _mm512_fmadd_ps(_mm512_set1_ps(*xr), dyv, a0);
                    a1 = _mm512_fmadd_ps(_mm512_set1_ps(*xr.add(1)), dyv, a1);
                    a2 = _mm512_fmadd_ps(_mm512_set1_ps(*xr.add(2)), dyv, a2);
                    a3 = _mm512_fmadd_ps(_mm512_set1_ps(*xr.add(3)), dyv, a3);
                }
            }
            _mm512_storeu_ps(p0, a0);
            _mm512_storeu_ps(p1, a1);
            _mm512_storeu_ps(p2, a2);
            _mm512_storeu_ps(p3, a3);
            r_c += 4;
        }
        while r_c < bc {
            let dwp = dw.add(r_c * bk + kb);
            let mut acc = _mm512_loadu_ps(dwp);
            for p in 0..x_panels.len() {
                let x = x_panels[p];
                let dy = dy_panels[p];
                for r_n in 0..bn {
                    acc = _mm512_fmadd_ps(
                        _mm512_set1_ps(*x.add(r_n * bc + r_c)),
                        _mm512_loadu_ps(dy.add(r_n * bk + kb)),
                        acc,
                    );
                }
            }
            _mm512_storeu_ps(dwp, acc);
            r_c += 1;
        }
    }
}

/// Batch-reduce backward-by-weights with the bias-gradient reduction fused
/// in: besides `dW[bc][bk] += Σ_p X_pᵀ·dY_p`, overwrites
/// `db[rk] = Σ_p Σ_rn dY_p[rn][rk]` while the `dY` panels are hot in cache.
/// With panels supplied in ascending minibatch-block order (as the blocked
/// drivers do), each `db` lane is a plain-add chain in ascending flat-`n`
/// order — exactly `bias_grad_rows`' per-row `iter().sum()` — so the fused
/// bias gradient is bitwise identical to the separate pass on **every** ISA
/// tier (vectorizing across `bk` lanes reassociates nothing).
///
/// # Safety
/// Same as [`brgemm_bwd_wt`], plus `db` must be valid for `bk` writes and
/// must not alias any panel or `dw`.
pub unsafe fn brgemm_bwd_wt_bias(
    isa: Isa,
    x_panels: &[*const f32],
    dy_panels: &[*const f32],
    dw: *mut f32,
    db: *mut f32,
    d: PanelDims,
) {
    brgemm_bwd_wt(isa, x_panels, dy_panels, dw, d);
    match isa {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 if d.bk.is_multiple_of(16) => bias_reduce_avx512(dy_panels, db, d),
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 | Isa::Avx512 if d.bk.is_multiple_of(8) => bias_reduce_avx2(dy_panels, db, d),
        _ => bias_reduce_scalar(dy_panels, db, d),
    }
}

unsafe fn bias_reduce_scalar(dy_panels: &[*const f32], db: *mut f32, d: PanelDims) {
    let PanelDims { bn, bk, .. } = d;
    let out = std::slice::from_raw_parts_mut(db, bk);
    out.fill(0.0);
    for &dy in dy_panels {
        for r_n in 0..bn {
            let row = std::slice::from_raw_parts(dy.add(r_n * bk), bk);
            for (o, &v) in out.iter_mut().zip(row) {
                *o += v;
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn bias_reduce_avx2(dy_panels: &[*const f32], db: *mut f32, d: PanelDims) {
    use std::arch::x86_64::*;
    let PanelDims { bn, bk, .. } = d;
    for kb in (0..bk).step_by(8) {
        let mut acc = _mm256_setzero_ps();
        for &dy in dy_panels {
            for r_n in 0..bn {
                acc = _mm256_add_ps(acc, _mm256_loadu_ps(dy.add(r_n * bk + kb)));
            }
        }
        _mm256_storeu_ps(db.add(kb), acc);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn bias_reduce_avx512(dy_panels: &[*const f32], db: *mut f32, d: PanelDims) {
    use std::arch::x86_64::*;
    let PanelDims { bn, bk, .. } = d;
    for kb in (0..bk).step_by(16) {
        let mut acc = _mm512_setzero_ps();
        for &dy in dy_panels {
            for r_n in 0..bn {
                acc = _mm512_add_ps(acc, _mm512_loadu_ps(dy.add(r_n * bk + kb)));
            }
        }
        _mm512_storeu_ps(db.add(kb), acc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_isas() -> Vec<Isa> {
        let mut v = vec![Isa::Scalar];
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
                v.push(Isa::Avx2);
            }
            if is_x86_feature_detected!("avx512f") {
                v.push(Isa::Avx512);
            }
        }
        v
    }

    /// Builds pseudo-random panels and the scalar ground truth, then checks
    /// every available ISA agrees.
    fn check_fwd(d: PanelDims, batch: usize) {
        let mk = |seed: usize, len: usize| -> Vec<f32> {
            (0..len)
                .map(|i| (((i * 2654435761 + seed * 40503) % 1000) as f32 - 500.0) / 250.0)
                .collect()
        };
        let ws: Vec<Vec<f32>> = (0..batch).map(|p| mk(p, d.bc * d.bk)).collect();
        let xs: Vec<Vec<f32>> = (0..batch).map(|p| mk(p + 99, d.bn * d.bc)).collect();
        let wp: Vec<*const f32> = ws.iter().map(|v| v.as_ptr()).collect();
        let xp: Vec<*const f32> = xs.iter().map(|v| v.as_ptr()).collect();

        let mut want = vec![0.1f32; d.bn * d.bk];
        unsafe { brgemm_fwd_scalar(&wp, &xp, want.as_mut_ptr(), d) };

        for isa in all_isas() {
            let mut got = vec![0.1f32; d.bn * d.bk];
            unsafe { brgemm_fwd(isa, &wp, &xp, got.as_mut_ptr(), d) };
            dlrm_tensor::assert_allclose(&got, &want, 1e-4, &format!("fwd {isa:?} {d:?}"));
        }
    }

    fn check_bwd_data(d: PanelDims, batch: usize) {
        let mk = |seed: usize, len: usize| -> Vec<f32> {
            (0..len)
                .map(|i| (((i * 1103515245 + seed * 12345) % 997) as f32 - 498.0) / 300.0)
                .collect()
        };
        let ws: Vec<Vec<f32>> = (0..batch).map(|p| mk(p, d.bc * d.bk)).collect();
        let dys: Vec<Vec<f32>> = (0..batch).map(|p| mk(p + 7, d.bn * d.bk)).collect();
        let wp: Vec<*const f32> = ws.iter().map(|v| v.as_ptr()).collect();
        let dyp: Vec<*const f32> = dys.iter().map(|v| v.as_ptr()).collect();

        let mut want = vec![-0.2f32; d.bn * d.bc];
        unsafe { brgemm_bwd_data_scalar(&wp, &dyp, want.as_mut_ptr(), d) };

        for isa in all_isas() {
            let mut got = vec![-0.2f32; d.bn * d.bc];
            unsafe { brgemm_bwd_data(isa, &wp, &dyp, got.as_mut_ptr(), d) };
            dlrm_tensor::assert_allclose(&got, &want, 1e-4, &format!("bwd_d {isa:?} {d:?}"));
        }
    }

    fn check_bwd_wt(d: PanelDims, batch: usize) {
        let mk = |seed: usize, len: usize| -> Vec<f32> {
            (0..len)
                .map(|i| (((i * 69069 + seed * 999331) % 991) as f32 - 495.0) / 400.0)
                .collect()
        };
        let xs: Vec<Vec<f32>> = (0..batch).map(|p| mk(p, d.bn * d.bc)).collect();
        let dys: Vec<Vec<f32>> = (0..batch).map(|p| mk(p + 3, d.bn * d.bk)).collect();
        let xp: Vec<*const f32> = xs.iter().map(|v| v.as_ptr()).collect();
        let dyp: Vec<*const f32> = dys.iter().map(|v| v.as_ptr()).collect();

        let mut want = vec![0.0f32; d.bc * d.bk];
        unsafe { brgemm_bwd_wt_scalar(&xp, &dyp, want.as_mut_ptr(), d) };

        for isa in all_isas() {
            let mut got = vec![0.0f32; d.bc * d.bk];
            unsafe { brgemm_bwd_wt(isa, &xp, &dyp, got.as_mut_ptr(), d) };
            dlrm_tensor::assert_allclose(&got, &want, 1e-4, &format!("bwd_w {isa:?} {d:?}"));
        }
    }

    #[test]
    fn fwd_all_isas_agree_square() {
        check_fwd(
            PanelDims {
                bn: 8,
                bc: 32,
                bk: 32,
            },
            4,
        );
    }

    #[test]
    fn fwd_all_isas_agree_odd_bn() {
        // bn=5 exercises the AVX-512 remainder-row path.
        check_fwd(
            PanelDims {
                bn: 5,
                bc: 16,
                bk: 48,
            },
            3,
        );
    }

    #[test]
    fn fwd_scalar_fallback_for_odd_bk() {
        check_fwd(
            PanelDims {
                bn: 4,
                bc: 8,
                bk: 10,
            },
            2,
        );
    }

    #[test]
    fn fwd_single_panel() {
        check_fwd(
            PanelDims {
                bn: 2,
                bc: 2,
                bk: 16,
            },
            1,
        );
    }

    #[test]
    fn bwd_data_all_isas_agree() {
        check_bwd_data(
            PanelDims {
                bn: 8,
                bc: 24,
                bk: 32,
            },
            4,
        );
        check_bwd_data(
            PanelDims {
                bn: 3,
                bc: 5,
                bk: 16,
            },
            2,
        );
        check_bwd_data(
            PanelDims {
                bn: 4,
                bc: 8,
                bk: 9,
            },
            2,
        ); // scalar path
    }

    #[test]
    fn bwd_wt_all_isas_agree() {
        check_bwd_wt(
            PanelDims {
                bn: 8,
                bc: 32,
                bk: 32,
            },
            4,
        );
        check_bwd_wt(
            PanelDims {
                bn: 7,
                bc: 5,
                bk: 16,
            },
            3,
        ); // remainder cols
        check_bwd_wt(
            PanelDims {
                bn: 4,
                bc: 8,
                bk: 12,
            },
            2,
        ); // avx2/scalar
    }

    #[test]
    fn widened_avx512_fwd_is_bitwise_identical_to_narrow() {
        #[cfg(target_arch = "x86_64")]
        {
            if !is_x86_feature_detected!("avx512f") {
                return;
            }
            for (bn, bc, bk, batch) in [(8, 16, 32, 4), (5, 7, 64, 3), (1, 3, 32, 1)] {
                let d = PanelDims { bn, bc, bk };
                let mk = |seed: usize, len: usize| -> Vec<f32> {
                    (0..len)
                        .map(|i| (((i * 2654435761 + seed * 40503) % 1000) as f32 - 500.0) / 250.0)
                        .collect()
                };
                let ws: Vec<Vec<f32>> = (0..batch).map(|p| mk(p, bc * bk)).collect();
                let xs: Vec<Vec<f32>> = (0..batch).map(|p| mk(p + 99, bn * bc)).collect();
                let wp: Vec<*const f32> = ws.iter().map(|v| v.as_ptr()).collect();
                let xp: Vec<*const f32> = xs.iter().map(|v| v.as_ptr()).collect();
                let mut wide = vec![0.25f32; bn * bk];
                let mut narrow = vec![0.25f32; bn * bk];
                unsafe {
                    brgemm_fwd_avx512_x2(&wp, &xp, wide.as_mut_ptr(), d);
                    brgemm_fwd_avx512(&wp, &xp, narrow.as_mut_ptr(), d);
                }
                let wb: Vec<u32> = wide.iter().map(|v| v.to_bits()).collect();
                let nb: Vec<u32> = narrow.iter().map(|v| v.to_bits()).collect();
                assert_eq!(wb, nb, "widened fwd must be bitwise identical {d:?}");
            }
        }
    }

    #[test]
    fn bwd_data_relu_is_bitwise_unfused_then_mask() {
        for (bn, bc, bk, batch) in [(8, 24, 32, 4), (3, 5, 16, 2), (4, 8, 9, 2)] {
            let d = PanelDims { bn, bc, bk };
            let mk = |seed: usize, len: usize| -> Vec<f32> {
                (0..len)
                    .map(|i| (((i * 1103515245 + seed * 12345) % 997) as f32 - 498.0) / 300.0)
                    .collect()
            };
            let ws: Vec<Vec<f32>> = (0..batch).map(|p| mk(p, bc * bk)).collect();
            let dys: Vec<Vec<f32>> = (0..batch).map(|p| mk(p + 7, bn * bk)).collect();
            let wp: Vec<*const f32> = ws.iter().map(|v| v.as_ptr()).collect();
            let dyp: Vec<*const f32> = dys.iter().map(|v| v.as_ptr()).collect();
            // Mask mixes strictly-negative, exact-zero and positive entries.
            let mask: Vec<f32> = (0..bn * bc)
                .map(|i| match i % 3 {
                    0 => -1.0,
                    1 => 0.0,
                    _ => 0.5,
                })
                .collect();
            for isa in all_isas() {
                let mut want = vec![0.0f32; bn * bc];
                unsafe { brgemm_bwd_data(isa, &wp, &dyp, want.as_mut_ptr(), d) };
                for (w, &m) in want.iter_mut().zip(&mask) {
                    if m <= 0.0 {
                        *w = 0.0;
                    }
                }
                let mut got = vec![0.0f32; bn * bc];
                unsafe { brgemm_bwd_data_relu(isa, &wp, &dyp, got.as_mut_ptr(), mask.as_ptr(), d) };
                let gb: Vec<u32> = got.iter().map(|v| v.to_bits()).collect();
                let wb: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
                assert_eq!(gb, wb, "fused relu bwd_data {isa:?} {d:?}");
            }
        }
    }

    #[test]
    fn bwd_wt_bias_matches_unfused_and_flat_row_sums() {
        for (bn, bc, bk, batch) in [(8, 32, 32, 4), (7, 5, 16, 3), (4, 8, 12, 2), (3, 5, 6, 2)] {
            let d = PanelDims { bn, bc, bk };
            let mk = |seed: usize, len: usize| -> Vec<f32> {
                (0..len)
                    .map(|i| (((i * 69069 + seed * 999331) % 991) as f32 - 495.0) / 400.0)
                    .collect()
            };
            let xs: Vec<Vec<f32>> = (0..batch).map(|p| mk(p, bn * bc)).collect();
            let dys: Vec<Vec<f32>> = (0..batch).map(|p| mk(p + 3, bn * bk)).collect();
            let xp: Vec<*const f32> = xs.iter().map(|v| v.as_ptr()).collect();
            let dyp: Vec<*const f32> = dys.iter().map(|v| v.as_ptr()).collect();
            // Flat reference: db[rk] = ascending-n plain sum, like
            // bias_grad_rows on the unpacked [bk x (batch*bn)] gradient.
            let mut db_ref = vec![0.0f32; bk];
            for (rk, o) in db_ref.iter_mut().enumerate() {
                for dy in &dys {
                    for r_n in 0..bn {
                        *o += dy[r_n * bk + rk];
                    }
                }
            }
            for isa in all_isas() {
                let mut dw_want = vec![0.0f32; bc * bk];
                unsafe { brgemm_bwd_wt(isa, &xp, &dyp, dw_want.as_mut_ptr(), d) };
                let mut dw_got = vec![0.0f32; bc * bk];
                let mut db_got = vec![7.0f32; bk]; // overwrite semantics
                unsafe {
                    brgemm_bwd_wt_bias(isa, &xp, &dyp, dw_got.as_mut_ptr(), db_got.as_mut_ptr(), d)
                };
                let a: Vec<u32> = dw_got.iter().map(|v| v.to_bits()).collect();
                let b: Vec<u32> = dw_want.iter().map(|v| v.to_bits()).collect();
                assert_eq!(a, b, "fused dW {isa:?} {d:?}");
                let a: Vec<u32> = db_got.iter().map(|v| v.to_bits()).collect();
                let b: Vec<u32> = db_ref.iter().map(|v| v.to_bits()).collect();
                assert_eq!(a, b, "fused db must be bitwise flat sum {isa:?} {d:?}");
            }
        }
    }

    #[test]
    fn override_forces_tier() {
        set_isa_override(Some(Isa::Scalar));
        assert_eq!(detect_isa(), Isa::Scalar);
        set_isa_override(None);
        let _ = detect_isa(); // whatever the CPU supports; just must not panic
    }

    #[test]
    fn batch_reduce_equals_sequential_calls() {
        // Reducing P panels in one call must equal P accumulating calls.
        let d = PanelDims {
            bn: 4,
            bc: 8,
            bk: 16,
        };
        let mk = |seed: usize, len: usize| -> Vec<f32> {
            (0..len)
                .map(|i| ((i + seed) % 17) as f32 * 0.21 - 1.5)
                .collect()
        };
        let ws: Vec<Vec<f32>> = (0..5).map(|p| mk(p, d.bc * d.bk)).collect();
        let xs: Vec<Vec<f32>> = (0..5).map(|p| mk(p + 31, d.bn * d.bc)).collect();
        let wp: Vec<*const f32> = ws.iter().map(|v| v.as_ptr()).collect();
        let xp: Vec<*const f32> = xs.iter().map(|v| v.as_ptr()).collect();

        let isa = detect_isa();
        let mut batched = vec![0.0f32; d.bn * d.bk];
        unsafe { brgemm_fwd(isa, &wp, &xp, batched.as_mut_ptr(), d) };

        let mut seq = vec![0.0f32; d.bn * d.bk];
        for p in 0..5 {
            unsafe { brgemm_fwd(isa, &wp[p..p + 1], &xp[p..p + 1], seq.as_mut_ptr(), d) };
        }
        dlrm_tensor::assert_allclose(&batched, &seq, 1e-4, "batch vs sequential");
    }
}
