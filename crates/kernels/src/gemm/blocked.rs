//! Fully-connected layer passes on blocked tensors (Algorithm 5).
//!
//! Each pass assigns output *blocks* to the thread team (line 1 of
//! Algorithm 5: "based on thread id calculate ... to assign output work
//! items"), prepares the batch-reduce pointer lists (lines 5–7) and invokes
//! the microkernel once per output block (line 9). Threads write disjoint
//! output panels, so no synchronization is needed beyond the team barrier.

use super::micro::{
    brgemm_bwd_data, brgemm_bwd_data_relu, brgemm_bwd_wt, brgemm_bwd_wt_bias, brgemm_fwd,
    detect_isa, PanelDims,
};
use super::SendMutPtr;
use crate::threadpool::ThreadPool;
use dlrm_tensor::{BlockedActivations, BlockedWeights};

/// Forward pass: `Y = W · X` with `W: K×C`, `X: C×N`, `Y: K×N`.
///
/// `y` must be pre-zeroed (the kernel accumulates, which is what lets the
/// same code serve fused residual adds).
pub fn fc_forward(
    pool: &ThreadPool,
    w: &BlockedWeights,
    x: &BlockedActivations,
    y: &mut BlockedActivations,
) {
    assert_eq!(w.c, x.c, "fc_forward: W columns != X rows");
    assert_eq!(y.c, w.k, "fc_forward: Y rows != W rows");
    assert_eq!(y.n, x.n, "fc_forward: batch mismatch");
    assert_eq!(w.blk.bc, x.bc, "fc_forward: bc mismatch");
    assert_eq!(y.bc, w.blk.bk, "fc_forward: bk mismatch");
    assert_eq!(y.bn, x.bn, "fc_forward: bn mismatch");

    let d = PanelDims {
        bn: x.bn,
        bc: x.bc,
        bk: w.blk.bk,
    };
    let (kb, cb, nb) = (w.kb(), w.cb(), x.nb());
    let isa = detect_isa();
    let y_base = SendMutPtr(y.as_mut_slice().as_mut_ptr());
    let panel = d.bn * d.bk;

    // Output blocks (ibk, ibn) flattened; ibn-major so consecutive threads
    // share weight sub-tensors from the cache where possible.
    pool.parallel_for(kb * nb, |_tid, range| {
        let mut w_ptrs: Vec<*const f32> = Vec::with_capacity(cb);
        let mut x_ptrs: Vec<*const f32> = Vec::with_capacity(cb);
        for blk_idx in range {
            let (ibn, ibk) = (blk_idx / kb, blk_idx % kb);
            w_ptrs.clear();
            x_ptrs.clear();
            for ibc in 0..cb {
                w_ptrs.push(w.block(ibk, ibc).as_ptr());
                x_ptrs.push(x.block_ptr(ibc, ibn));
            }
            // Y block (ibk, ibn): same block-major order as BlockedActivations.
            let y_off = (ibk * nb + ibn) * panel;
            // SAFETY: each (ibk, ibn) pair is visited by exactly one thread,
            // and panels are disjoint slices of y.
            unsafe { brgemm_fwd(isa, &w_ptrs, &x_ptrs, y_base.get().add(y_off), d) };
        }
    });
}

/// Forward pass with a fused epilogue: `Y = act(W·X + b)` where the bias
/// add and ReLU happen per output panel *immediately after its batch-reduce
/// GEMM*, while the panel is still hot in cache — "ReLU can directly happen
/// inside a custom GEMM routine when the C matrix is still hot in caches"
/// (Section II). Saves one full read+write sweep of `Y` versus applying the
/// activation as a separate pass.
pub fn fc_forward_fused(
    pool: &ThreadPool,
    w: &BlockedWeights,
    x: &BlockedActivations,
    y: &mut BlockedActivations,
    bias: Option<&[f32]>,
    relu: bool,
) {
    assert_eq!(w.c, x.c, "fc_forward_fused: W columns != X rows");
    assert_eq!(y.c, w.k, "fc_forward_fused: Y rows != W rows");
    assert_eq!(y.n, x.n, "fc_forward_fused: batch mismatch");
    assert_eq!(w.blk.bc, x.bc, "fc_forward_fused: bc mismatch");
    assert_eq!(y.bc, w.blk.bk, "fc_forward_fused: bk mismatch");
    assert_eq!(y.bn, x.bn, "fc_forward_fused: bn mismatch");
    if let Some(b) = bias {
        assert_eq!(b.len(), w.k, "fc_forward_fused: bias length");
    }

    let d = PanelDims {
        bn: x.bn,
        bc: x.bc,
        bk: w.blk.bk,
    };
    let (kb, cb, nb) = (w.kb(), w.cb(), x.nb());
    let isa = detect_isa();
    let y_base = SendMutPtr(y.as_mut_slice().as_mut_ptr());
    let panel = d.bn * d.bk;

    pool.parallel_for(kb * nb, |_tid, range| {
        let mut w_ptrs: Vec<*const f32> = Vec::with_capacity(cb);
        let mut x_ptrs: Vec<*const f32> = Vec::with_capacity(cb);
        for blk_idx in range {
            let (ibn, ibk) = (blk_idx / kb, blk_idx % kb);
            w_ptrs.clear();
            x_ptrs.clear();
            for ibc in 0..cb {
                w_ptrs.push(w.block(ibk, ibc).as_ptr());
                x_ptrs.push(x.block_ptr(ibc, ibn));
            }
            let y_off = (ibk * nb + ibn) * panel;
            // SAFETY: disjoint (ibk, ibn) output panels per thread; the
            // epilogue below touches only this panel.
            unsafe {
                brgemm_fwd(isa, &w_ptrs, &x_ptrs, y_base.get().add(y_off), d);
                let out = std::slice::from_raw_parts_mut(y_base.get().add(y_off), panel);
                // Panel layout is [bn][bk]; bias indexes the K dimension.
                if let Some(b) = bias {
                    let b_blk = &b[ibk * d.bk..(ibk + 1) * d.bk];
                    for rn in 0..d.bn {
                        for (v, &bv) in out[rn * d.bk..(rn + 1) * d.bk].iter_mut().zip(b_blk) {
                            *v += bv;
                        }
                    }
                }
                if relu {
                    for v in out.iter_mut() {
                        if *v < 0.0 {
                            *v = 0.0;
                        }
                    }
                }
            }
        }
    });
}

/// Backward-by-data pass: `dX = Wᵀ · dY`.
///
/// `dx` must be pre-zeroed.
pub fn fc_backward_data(
    pool: &ThreadPool,
    w: &BlockedWeights,
    dy: &BlockedActivations,
    dx: &mut BlockedActivations,
) {
    assert_eq!(dy.c, w.k, "fc_backward_data: dY rows != W rows");
    assert_eq!(dx.c, w.c, "fc_backward_data: dX rows != W cols");
    assert_eq!(dx.n, dy.n, "fc_backward_data: batch mismatch");
    assert_eq!(dy.bc, w.blk.bk, "fc_backward_data: bk mismatch");
    assert_eq!(dx.bc, w.blk.bc, "fc_backward_data: bc mismatch");

    let d = PanelDims {
        bn: dy.bn,
        bc: w.blk.bc,
        bk: w.blk.bk,
    };
    let (kb, cb, nb) = (w.kb(), w.cb(), dy.nb());
    let isa = detect_isa();
    let dx_base = SendMutPtr(dx.as_mut_slice().as_mut_ptr());
    let panel = d.bn * d.bc;

    pool.parallel_for(cb * nb, |_tid, range| {
        let mut w_ptrs: Vec<*const f32> = Vec::with_capacity(kb);
        let mut dy_ptrs: Vec<*const f32> = Vec::with_capacity(kb);
        for blk_idx in range {
            let (ibn, ibc) = (blk_idx / cb, blk_idx % cb);
            w_ptrs.clear();
            dy_ptrs.clear();
            for ibk in 0..kb {
                w_ptrs.push(w.block(ibk, ibc).as_ptr());
                dy_ptrs.push(dy.block_ptr(ibk, ibn));
            }
            let dx_off = (ibc * nb + ibn) * panel;
            // SAFETY: disjoint (ibc, ibn) output panels per thread.
            unsafe { brgemm_bwd_data(isa, &w_ptrs, &dy_ptrs, dx_base.get().add(dx_off), d) };
        }
    });
}

/// Backward-by-data with the upstream ReLU mask fused into the panel
/// writeback: `dX = relu'(Wᵀ · dY)` where `relu_mask` is the *blocked
/// forward output of the upstream layer* (same `[Cb][Nb][bn][bc]` shape and
/// blocking as `dx`). Elements of `dx` whose mask entry is `<= 0` come out
/// exactly `0.0`; everything else is the full batch-reduce accumulation —
/// bitwise identical to [`fc_backward_data`] followed by a separate
/// `relu_backward` sweep, without the extra pass over `dX`.
///
/// `dx` must be pre-zeroed. With `relu_mask: None` this is exactly
/// [`fc_backward_data`].
pub fn fc_backward_data_fused(
    pool: &ThreadPool,
    w: &BlockedWeights,
    dy: &BlockedActivations,
    dx: &mut BlockedActivations,
    relu_mask: Option<&BlockedActivations>,
) {
    assert_eq!(dy.c, w.k, "fc_backward_data_fused: dY rows != W rows");
    assert_eq!(dx.c, w.c, "fc_backward_data_fused: dX rows != W cols");
    assert_eq!(dx.n, dy.n, "fc_backward_data_fused: batch mismatch");
    assert_eq!(dy.bc, w.blk.bk, "fc_backward_data_fused: bk mismatch");
    assert_eq!(dx.bc, w.blk.bc, "fc_backward_data_fused: bc mismatch");
    if let Some(m) = relu_mask {
        assert_eq!(
            (m.c, m.n),
            (dx.c, dx.n),
            "fc_backward_data_fused: mask shape"
        );
        assert_eq!(
            (m.bc, m.bn),
            (dx.bc, dx.bn),
            "fc_backward_data_fused: mask blocking"
        );
    }

    let d = PanelDims {
        bn: dy.bn,
        bc: w.blk.bc,
        bk: w.blk.bk,
    };
    let (kb, cb, nb) = (w.kb(), w.cb(), dy.nb());
    let isa = detect_isa();
    let dx_base = SendMutPtr(dx.as_mut_slice().as_mut_ptr());
    let panel = d.bn * d.bc;

    pool.parallel_for(cb * nb, |_tid, range| {
        let mut w_ptrs: Vec<*const f32> = Vec::with_capacity(kb);
        let mut dy_ptrs: Vec<*const f32> = Vec::with_capacity(kb);
        for blk_idx in range {
            let (ibn, ibc) = (blk_idx / cb, blk_idx % cb);
            w_ptrs.clear();
            dy_ptrs.clear();
            for ibk in 0..kb {
                w_ptrs.push(w.block(ibk, ibc).as_ptr());
                dy_ptrs.push(dy.block_ptr(ibk, ibn));
            }
            let dx_off = (ibc * nb + ibn) * panel;
            // SAFETY: disjoint (ibc, ibn) output panels per thread; the mask
            // panel is read-only and congruent with the dx panel.
            unsafe {
                match relu_mask {
                    Some(m) => brgemm_bwd_data_relu(
                        isa,
                        &w_ptrs,
                        &dy_ptrs,
                        dx_base.get().add(dx_off),
                        m.block_ptr(ibc, ibn),
                        d,
                    ),
                    None => brgemm_bwd_data(isa, &w_ptrs, &dy_ptrs, dx_base.get().add(dx_off), d),
                }
            }
        }
    });
}

/// Backward-by-weights pass: `dW = dY · Xᵀ`.
///
/// `dw` must be pre-zeroed.
pub fn fc_backward_weights(
    pool: &ThreadPool,
    x: &BlockedActivations,
    dy: &BlockedActivations,
    dw: &mut BlockedWeights,
) {
    assert_eq!(dw.k, dy.c, "fc_backward_weights: dW rows != dY rows");
    assert_eq!(dw.c, x.c, "fc_backward_weights: dW cols != X rows");
    assert_eq!(x.n, dy.n, "fc_backward_weights: batch mismatch");
    assert_eq!(dw.blk.bc, x.bc, "fc_backward_weights: bc mismatch");
    assert_eq!(dw.blk.bk, dy.bc, "fc_backward_weights: bk mismatch");

    let d = PanelDims {
        bn: x.bn,
        bc: x.bc,
        bk: dw.blk.bk,
    };
    let (kb, cb, nb) = (dw.kb(), dw.cb(), x.nb());
    let isa = detect_isa();
    let dw_base = SendMutPtr(dw.as_mut_slice().as_mut_ptr());
    let panel = d.bc * d.bk;

    // The reduction here is over the minibatch blocks — this is the pass
    // whose locality motivated the paper's [Cb][Nb][bn][bc] activation
    // layout choice.
    pool.parallel_for(kb * cb, |_tid, range| {
        let mut x_ptrs: Vec<*const f32> = Vec::with_capacity(nb);
        let mut dy_ptrs: Vec<*const f32> = Vec::with_capacity(nb);
        for blk_idx in range {
            let (ibk, ibc) = (blk_idx / cb, blk_idx % cb);
            x_ptrs.clear();
            dy_ptrs.clear();
            for ibn in 0..nb {
                x_ptrs.push(x.block_ptr(ibc, ibn));
                dy_ptrs.push(dy.block_ptr(ibk, ibn));
            }
            let dw_off = (ibk * cb + ibc) * panel;
            // SAFETY: disjoint (ibk, ibc) output panels per thread.
            unsafe { brgemm_bwd_wt(isa, &x_ptrs, &dy_ptrs, dw_base.get().add(dw_off), d) };
        }
    });
}

/// Backward-by-weights with the bias-gradient reduction fused in:
/// `dW = dY · Xᵀ` and `db = row-sums of dY`, computed while each `dY` panel
/// is hot. The `db` fragment for output block `ibk` is produced by the
/// thread that owns work item `(ibk, ibc=0)` — fragments are disjoint, so
/// no synchronization is needed. The fused `db` is bitwise identical to
/// `bias_grad_rows` on the unpacked gradient (ascending-`n` plain adds per
/// lane; see `brgemm_bwd_wt_bias`).
///
/// `dw` must be pre-zeroed; `db` (length `K`) is overwritten.
pub fn fc_backward_weights_fused(
    pool: &ThreadPool,
    x: &BlockedActivations,
    dy: &BlockedActivations,
    dw: &mut BlockedWeights,
    db: &mut [f32],
) {
    assert_eq!(dw.k, dy.c, "fc_backward_weights_fused: dW rows != dY rows");
    assert_eq!(dw.c, x.c, "fc_backward_weights_fused: dW cols != X rows");
    assert_eq!(x.n, dy.n, "fc_backward_weights_fused: batch mismatch");
    assert_eq!(dw.blk.bc, x.bc, "fc_backward_weights_fused: bc mismatch");
    assert_eq!(dw.blk.bk, dy.bc, "fc_backward_weights_fused: bk mismatch");
    assert_eq!(db.len(), dw.k, "fc_backward_weights_fused: db length");

    let d = PanelDims {
        bn: x.bn,
        bc: x.bc,
        bk: dw.blk.bk,
    };
    let (kb, cb, nb) = (dw.kb(), dw.cb(), x.nb());
    let isa = detect_isa();
    let dw_base = SendMutPtr(dw.as_mut_slice().as_mut_ptr());
    let db_base = SendMutPtr(db.as_mut_ptr());
    let panel = d.bc * d.bk;

    pool.parallel_for(kb * cb, |_tid, range| {
        let mut x_ptrs: Vec<*const f32> = Vec::with_capacity(nb);
        let mut dy_ptrs: Vec<*const f32> = Vec::with_capacity(nb);
        for blk_idx in range {
            let (ibk, ibc) = (blk_idx / cb, blk_idx % cb);
            x_ptrs.clear();
            dy_ptrs.clear();
            for ibn in 0..nb {
                x_ptrs.push(x.block_ptr(ibc, ibn));
                dy_ptrs.push(dy.block_ptr(ibk, ibn));
            }
            let dw_off = (ibk * cb + ibc) * panel;
            // SAFETY: disjoint (ibk, ibc) dW panels per thread; the db
            // fragment for ibk is written only by the (ibk, 0) work item.
            unsafe {
                if ibc == 0 {
                    brgemm_bwd_wt_bias(
                        isa,
                        &x_ptrs,
                        &dy_ptrs,
                        dw_base.get().add(dw_off),
                        db_base.get().add(ibk * d.bk),
                        d,
                    );
                } else {
                    brgemm_bwd_wt(isa, &x_ptrs, &dy_ptrs, dw_base.get().add(dw_off), d);
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::naive;
    use dlrm_tensor::blocked::Blocking;
    use dlrm_tensor::init::{seeded_rng, uniform};
    use dlrm_tensor::{assert_allclose, Matrix};

    struct Problem {
        w: Matrix,  // K x C
        x: Matrix,  // C x N
        dy: Matrix, // K x N
        blk: Blocking,
    }

    fn problem(k: usize, c: usize, n: usize, blk: Blocking, seed: u64) -> Problem {
        let mut rng = seeded_rng(seed, 0);
        Problem {
            w: uniform(k, c, -1.0, 1.0, &mut rng),
            x: uniform(c, n, -1.0, 1.0, &mut rng),
            dy: uniform(k, n, -1.0, 1.0, &mut rng),
            blk,
        }
    }

    fn check_all_passes(p: &Problem, pool: &ThreadPool) {
        let (k, c) = p.w.shape();
        let n = p.x.cols();
        let Blocking { bn, bc, bk } = p.blk;

        // Forward.
        let wb = dlrm_tensor::BlockedWeights::pack(&p.w, p.blk);
        let xb = dlrm_tensor::BlockedActivations::pack(&p.x, bc, bn);
        let mut yb = dlrm_tensor::BlockedActivations::zeros(k, n, bk, bn);
        fc_forward(pool, &wb, &xb, &mut yb);
        let mut y_ref = Matrix::zeros(k, n);
        naive::gemm_nn(&p.w, &p.x, &mut y_ref);
        let y_unpacked = yb.unpack();
        assert_allclose(y_unpacked.as_slice(), y_ref.as_slice(), 1e-4, "fwd");

        // Backward by data: dX = W^T dY.
        let dyb = dlrm_tensor::BlockedActivations::pack(&p.dy, bk, bn);
        let mut dxb = dlrm_tensor::BlockedActivations::zeros(c, n, bc, bn);
        fc_backward_data(pool, &wb, &dyb, &mut dxb);
        let mut dx_ref = Matrix::zeros(c, n);
        naive::gemm_tn(&p.w, &p.dy, &mut dx_ref);
        let dx_unpacked = dxb.unpack();
        assert_allclose(dx_unpacked.as_slice(), dx_ref.as_slice(), 1e-4, "bwd_data");

        // Backward by weights: dW = dY X^T.
        let mut dwb = dlrm_tensor::BlockedWeights::zeros(k, c, p.blk);
        fc_backward_weights(pool, &xb, &dyb, &mut dwb);
        let mut dw_ref = Matrix::zeros(k, c);
        naive::gemm_nt(&p.dy, &p.x, &mut dw_ref);
        let dw_unpacked = dwb.unpack();
        assert_allclose(dw_unpacked.as_slice(), dw_ref.as_slice(), 1e-4, "bwd_wt");
    }

    #[test]
    fn matches_naive_square() {
        let pool = ThreadPool::new(4);
        let blk = Blocking {
            bn: 8,
            bc: 16,
            bk: 16,
        };
        check_all_passes(&problem(64, 64, 32, blk, 1), &pool);
    }

    #[test]
    fn matches_naive_rectangular() {
        let pool = ThreadPool::new(3);
        let blk = Blocking {
            bn: 4,
            bc: 8,
            bk: 32,
        };
        check_all_passes(&problem(96, 40, 20, blk, 2), &pool);
    }

    #[test]
    fn matches_naive_single_block() {
        let pool = ThreadPool::new(2);
        let blk = Blocking {
            bn: 8,
            bc: 8,
            bk: 8,
        };
        check_all_passes(&problem(8, 8, 8, blk, 3), &pool);
    }

    #[test]
    fn matches_naive_odd_scalar_path() {
        // bk=6 forces the scalar microkernel everywhere.
        let pool = ThreadPool::new(2);
        let blk = Blocking {
            bn: 3,
            bc: 5,
            bk: 6,
        };
        check_all_passes(&problem(18, 15, 9, blk, 4), &pool);
    }

    #[test]
    fn single_thread_pool_matches() {
        let pool = ThreadPool::new(1);
        let blk = Blocking {
            bn: 8,
            bc: 16,
            bk: 16,
        };
        check_all_passes(&problem(32, 48, 16, blk, 5), &pool);
    }

    #[test]
    fn more_threads_than_blocks_matches() {
        let pool = ThreadPool::new(16);
        let blk = Blocking {
            bn: 16,
            bc: 16,
            bk: 16,
        };
        check_all_passes(&problem(16, 16, 16, blk, 6), &pool);
    }

    #[test]
    fn fused_epilogue_matches_separate_passes() {
        let pool = ThreadPool::new(3);
        let blk = Blocking {
            bn: 4,
            bc: 8,
            bk: 16,
        };
        let (k, c, n) = (32usize, 24usize, 12usize);
        let p = problem(k, c, n, blk, 9);
        let bias: Vec<f32> = (0..k).map(|i| (i as f32 - 16.0) * 0.3).collect();

        let wb = dlrm_tensor::BlockedWeights::pack(&p.w, blk);
        let xb = dlrm_tensor::BlockedActivations::pack(&p.x, blk.bc, blk.bn);

        // Fused path.
        let mut y_fused = dlrm_tensor::BlockedActivations::zeros(k, n, blk.bk, blk.bn);
        fc_forward_fused(&pool, &wb, &xb, &mut y_fused, Some(&bias), true);

        // Separate passes: gemm, then bias, then relu on the unpacked form.
        let mut y_ref = Matrix::zeros(k, n);
        naive::gemm_nn(&p.w, &p.x, &mut y_ref);
        for kk in 0..k {
            for nn in 0..n {
                y_ref[(kk, nn)] = (y_ref[(kk, nn)] + bias[kk]).max(0.0);
            }
        }
        let got = y_fused.unpack();
        assert_allclose(got.as_slice(), y_ref.as_slice(), 1e-4, "fused epilogue");
    }

    #[test]
    fn fused_without_bias_or_relu_equals_plain_forward() {
        let pool = ThreadPool::new(2);
        let blk = Blocking {
            bn: 2,
            bc: 4,
            bk: 8,
        };
        let p = problem(16, 8, 6, blk, 10);
        let wb = dlrm_tensor::BlockedWeights::pack(&p.w, blk);
        let xb = dlrm_tensor::BlockedActivations::pack(&p.x, blk.bc, blk.bn);
        let mut a = dlrm_tensor::BlockedActivations::zeros(16, 6, blk.bk, blk.bn);
        fc_forward(&pool, &wb, &xb, &mut a);
        let mut b = dlrm_tensor::BlockedActivations::zeros(16, 6, blk.bk, blk.bn);
        fc_forward_fused(&pool, &wb, &xb, &mut b, None, false);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn fused_backward_data_is_bitwise_unfused_then_mask() {
        let pool = ThreadPool::new(3);
        for blk in [
            Blocking {
                bn: 4,
                bc: 8,
                bk: 16,
            },
            Blocking {
                bn: 3,
                bc: 5,
                bk: 6,
            }, // scalar microkernel path
        ] {
            let (k, c, n) = (2 * blk.bk, 3 * blk.bc, 2 * blk.bn);
            let p = problem(k, c, n, blk, 21);
            // The "mask" is a forward output with mixed signs and zeros.
            let mut mask = uniform(c, n, -1.0, 1.0, &mut seeded_rng(22, 0));
            for (i, v) in mask.as_mut_slice().iter_mut().enumerate() {
                if i % 5 == 0 {
                    *v = 0.0;
                }
            }
            let wb = dlrm_tensor::BlockedWeights::pack(&p.w, blk);
            let dyb = dlrm_tensor::BlockedActivations::pack(&p.dy, blk.bk, blk.bn);
            let maskb = dlrm_tensor::BlockedActivations::pack(&mask, blk.bc, blk.bn);

            let mut want = dlrm_tensor::BlockedActivations::zeros(c, n, blk.bc, blk.bn);
            fc_backward_data(&pool, &wb, &dyb, &mut want);
            for (v, &m) in want.as_mut_slice().iter_mut().zip(maskb.as_slice()) {
                if m <= 0.0 {
                    *v = 0.0;
                }
            }
            let mut got = dlrm_tensor::BlockedActivations::zeros(c, n, blk.bc, blk.bn);
            fc_backward_data_fused(&pool, &wb, &dyb, &mut got, Some(&maskb));
            let a: Vec<u32> = got.as_slice().iter().map(|v| v.to_bits()).collect();
            let b: Vec<u32> = want.as_slice().iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b, "fused bwd_data mask {blk:?}");

            // None mask degenerates to the plain pass.
            let mut plain = dlrm_tensor::BlockedActivations::zeros(c, n, blk.bc, blk.bn);
            fc_backward_data_fused(&pool, &wb, &dyb, &mut plain, None);
            let mut unfused = dlrm_tensor::BlockedActivations::zeros(c, n, blk.bc, blk.bn);
            fc_backward_data(&pool, &wb, &dyb, &mut unfused);
            assert_eq!(plain.as_slice(), unfused.as_slice());
        }
    }

    #[test]
    fn fused_backward_weights_bias_matches_separate_passes_bitwise() {
        use crate::activations::bias_grad_rows;
        let pool = ThreadPool::new(3);
        for blk in [
            Blocking {
                bn: 4,
                bc: 8,
                bk: 16,
            },
            Blocking {
                bn: 3,
                bc: 5,
                bk: 6,
            },
        ] {
            let (k, c, n) = (3 * blk.bk, 2 * blk.bc, 4 * blk.bn);
            let p = problem(k, c, n, blk, 23);
            let xb = dlrm_tensor::BlockedActivations::pack(&p.x, blk.bc, blk.bn);
            let dyb = dlrm_tensor::BlockedActivations::pack(&p.dy, blk.bk, blk.bn);

            let mut dw_want = dlrm_tensor::BlockedWeights::zeros(k, c, blk);
            fc_backward_weights(&pool, &xb, &dyb, &mut dw_want);
            let mut db_want = vec![0.0f32; k];
            bias_grad_rows(p.dy.as_slice(), k, n, &mut db_want);

            let mut dw_got = dlrm_tensor::BlockedWeights::zeros(k, c, blk);
            let mut db_got = vec![-3.0f32; k]; // overwrite semantics
            fc_backward_weights_fused(&pool, &xb, &dyb, &mut dw_got, &mut db_got);

            assert_eq!(dw_got.as_slice(), dw_want.as_slice(), "dW {blk:?}");
            let a: Vec<u32> = db_got.iter().map(|v| v.to_bits()).collect();
            let b: Vec<u32> = db_want.iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b, "fused db must bitwise match bias_grad_rows {blk:?}");
        }
    }

    #[test]
    #[should_panic(expected = "bc mismatch")]
    fn forward_rejects_inconsistent_blocking() {
        let pool = ThreadPool::new(1);
        let blk = Blocking {
            bn: 4,
            bc: 8,
            bk: 8,
        };
        let w = dlrm_tensor::BlockedWeights::zeros(8, 16, blk);
        let x = dlrm_tensor::BlockedActivations::zeros(16, 8, 4, 4); // bc=4 != 8
        let mut y = dlrm_tensor::BlockedActivations::zeros(8, 8, 8, 4);
        fc_forward(&pool, &w, &x, &mut y);
    }
}
