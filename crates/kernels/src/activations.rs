//! Elementwise activation kernels (ReLU, sigmoid) and bias addition.
//!
//! The paper notes these are "complexity-wise irrelevant" and best fused or
//! overlapped; they are kept simple and, where profitable, run on the
//! thread pool.

use crate::threadpool::ThreadPool;

/// In-place ReLU forward; returns nothing, mutates `x`.
pub fn relu_forward(x: &mut [f32]) {
    for v in x.iter_mut() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// ReLU backward: zeroes `grad` wherever the forward *output* was zero.
///
/// Using the output (rather than the input) is exact for ReLU and lets the
/// forward run in place.
pub fn relu_backward(out: &[f32], grad: &mut [f32]) {
    assert_eq!(out.len(), grad.len());
    for (g, &y) in grad.iter_mut().zip(out) {
        if y <= 0.0 {
            *g = 0.0;
        }
    }
}

/// Numerically stable logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// In-place sigmoid forward.
pub fn sigmoid_forward(x: &mut [f32]) {
    for v in x.iter_mut() {
        *v = sigmoid(*v);
    }
}

/// Sigmoid backward given the forward output: `g *= y (1 − y)`.
pub fn sigmoid_backward(out: &[f32], grad: &mut [f32]) {
    assert_eq!(out.len(), grad.len());
    for (g, &y) in grad.iter_mut().zip(out) {
        *g *= y * (1.0 - y);
    }
}

/// Adds bias `b[k]` to every column of a row-major `K×N` output
/// (the `Y = W·X` convention: rows are features, columns are samples).
pub fn bias_add_rows(y: &mut [f32], k: usize, n: usize, b: &[f32]) {
    assert_eq!(y.len(), k * n);
    assert_eq!(b.len(), k);
    for (row, &bv) in b.iter().enumerate() {
        for v in &mut y[row * n..(row + 1) * n] {
            *v += bv;
        }
    }
}

/// Reduces a row-major `K×N` gradient over the batch dimension into `db[k]`.
pub fn bias_grad_rows(dy: &[f32], k: usize, n: usize, db: &mut [f32]) {
    assert_eq!(dy.len(), k * n);
    assert_eq!(db.len(), k);
    for (row, dbv) in db.iter_mut().enumerate() {
        *dbv = dy[row * n..(row + 1) * n].iter().sum();
    }
}

/// Parallel in-place ReLU across a thread team (used on large activations).
pub fn par_relu_forward(pool: &ThreadPool, x: &mut [f32]) {
    let base = crate::gemm::SendMutPtr(x.as_mut_ptr());
    let len = x.len();
    pool.parallel_for(len, move |_tid, range| {
        // SAFETY: ranges from parallel_for are disjoint.
        let chunk =
            unsafe { std::slice::from_raw_parts_mut(base.get().add(range.start), range.len()) };
        relu_forward(chunk);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let mut x = [-2.0, -0.0, 0.5, 3.0];
        relu_forward(&mut x);
        assert_eq!(x, [0.0, 0.0, 0.5, 3.0]);
    }

    #[test]
    fn relu_backward_masks_by_output() {
        let out = [0.0, 0.0, 0.5, 3.0];
        let mut g = [1.0, 2.0, 3.0, 4.0];
        relu_backward(&out, &mut g);
        assert_eq!(g, [0.0, 0.0, 3.0, 4.0]);
    }

    #[test]
    fn sigmoid_symmetry_and_range() {
        assert_eq!(sigmoid(0.0), 0.5);
        for &x in &[-10.0f32, -3.0, -0.1, 0.1, 3.0, 10.0] {
            let y = sigmoid(x);
            assert!(y > 0.0 && y < 1.0);
            assert!((sigmoid(-x) - (1.0 - y)).abs() < 1e-6);
        }
        // At |x| = 50 the result saturates in f32 but must stay in [0, 1].
        for &x in &[-50.0f32, 50.0] {
            let y = sigmoid(x);
            assert!((0.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn sigmoid_extremes_do_not_overflow() {
        assert!((sigmoid(1000.0) - 1.0).abs() < 1e-6);
        assert!(sigmoid(-1000.0) >= 0.0);
        assert!(sigmoid(-1000.0) < 1e-6);
    }

    #[test]
    fn sigmoid_backward_matches_finite_difference() {
        let x = 0.7f32;
        let y = sigmoid(x);
        let mut g = [1.0f32];
        sigmoid_backward(&[y], &mut g);
        let h = 1e-3f32;
        let fd = (sigmoid(x + h) - sigmoid(x - h)) / (2.0 * h);
        assert!((g[0] - fd).abs() < 1e-4, "analytic {} vs fd {}", g[0], fd);
    }

    #[test]
    fn bias_roundtrip() {
        let mut y = vec![0.0f32; 6]; // 2x3
        bias_add_rows(&mut y, 2, 3, &[1.0, -2.0]);
        assert_eq!(y, [1.0, 1.0, 1.0, -2.0, -2.0, -2.0]);
        let mut db = vec![0.0f32; 2];
        bias_grad_rows(&y, 2, 3, &mut db);
        assert_eq!(db, [3.0, -6.0]);
    }

    #[test]
    fn par_relu_matches_serial() {
        let pool = ThreadPool::new(4);
        let mut a: Vec<f32> = (0..1000).map(|i| (i as f32 - 500.0) * 0.1).collect();
        let mut b = a.clone();
        relu_forward(&mut a);
        par_relu_forward(&pool, &mut b);
        assert_eq!(a, b);
    }
}
