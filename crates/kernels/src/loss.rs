//! Binary cross-entropy loss — DLRM's "classic cross-entropy loss function".
//!
//! Computed from *logits* for numerical stability; the backward pass
//! produces the gradient with respect to the logits directly
//! (`sigmoid(z) − t`, scaled by `1/N`), which is both stabler and cheaper
//! than chaining sigmoid and BCE gradients.

use crate::activations::sigmoid;

/// Mean BCE-with-logits loss over a batch.
///
/// Uses the standard stable form
/// `max(z, 0) − z·t + ln(1 + e^{−|z|})` averaged over samples.
pub fn bce_with_logits_loss(logits: &[f32], targets: &[f32]) -> f64 {
    assert_eq!(logits.len(), targets.len(), "loss length mismatch");
    assert!(!logits.is_empty(), "loss over empty batch");
    let mut acc = 0.0f64;
    for (&z, &t) in logits.iter().zip(targets) {
        let z64 = z as f64;
        let t64 = t as f64;
        acc += z64.max(0.0) - z64 * t64 + (1.0 + (-z64.abs()).exp()).ln();
    }
    acc / logits.len() as f64
}

/// Gradient of [`bce_with_logits_loss`] w.r.t. the logits:
/// `(sigmoid(z) − t) / N`.
pub fn bce_with_logits_backward(logits: &[f32], targets: &[f32], grad: &mut [f32]) {
    assert_eq!(logits.len(), targets.len());
    assert_eq!(logits.len(), grad.len());
    let inv_n = 1.0 / logits.len() as f32;
    for ((g, &z), &t) in grad.iter_mut().zip(logits).zip(targets) {
        *g = (sigmoid(z) - t) * inv_n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_at_confident_correct_prediction_is_small() {
        assert!(bce_with_logits_loss(&[10.0], &[1.0]) < 1e-4);
        assert!(bce_with_logits_loss(&[-10.0], &[0.0]) < 1e-4);
    }

    #[test]
    fn loss_at_confident_wrong_prediction_is_large() {
        assert!(bce_with_logits_loss(&[10.0], &[0.0]) > 9.0);
    }

    #[test]
    fn loss_at_zero_logit_is_ln2() {
        let l = bce_with_logits_loss(&[0.0, 0.0], &[0.0, 1.0]);
        assert!((l - std::f64::consts::LN_2).abs() < 1e-9);
    }

    #[test]
    fn extreme_logits_stay_finite() {
        let l = bce_with_logits_loss(&[500.0, -500.0], &[0.0, 1.0]);
        assert!(l.is_finite());
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = [0.3f32, -1.2, 2.0];
        let targets = [1.0f32, 0.0, 1.0];
        let mut grad = [0.0f32; 3];
        bce_with_logits_backward(&logits, &targets, &mut grad);
        let h = 1e-3f32;
        for i in 0..3 {
            let mut lp = logits;
            let mut lm = logits;
            lp[i] += h;
            lm[i] -= h;
            let fd = (bce_with_logits_loss(&lp, &targets) - bce_with_logits_loss(&lm, &targets))
                as f32
                / (2.0 * h);
            assert!((grad[i] - fd).abs() < 1e-4, "i={i}: {} vs {}", grad[i], fd);
        }
    }

    #[test]
    fn gradient_is_zero_at_perfect_prediction() {
        let mut grad = [0.0f32; 1];
        bce_with_logits_backward(&[30.0], &[1.0], &mut grad);
        assert!(grad[0].abs() < 1e-6);
    }
}
