//! EmbeddingBag kernels — Algorithms 1–4 of the paper plus the fused
//! backward+update.
//!
//! An embedding bag gathers `P` rows of a table `W ∈ R^{M×E}` per sample and
//! sums them (`L = AᵀW` with multi-hot `A`). A minibatch of `N` samples is
//! described by CSR-style `offsets` (`N+1` entries) into a flat `indices`
//! array of `NS` lookups.
//!
//! The *update* is where the paper's single-socket analysis lives: applying
//! per-lookup gradient rows `dW[NS][E]` back into the table races when the
//! same row is referenced twice. The four strategies of Section III-A:
//!
//! * [`UpdateStrategy::Reference`] — Algorithm 3, single-threaded (the
//!   PyTorch-v1.4-style baseline of Figure 7).
//! * [`UpdateStrategy::AtomicXchg`] — parallel over lookups; each scalar
//!   accumulation is a compare-exchange loop on the table element (Xeons
//!   have no native FP atomic add).
//! * [`UpdateStrategy::Rtm`] — optimistic row-granular critical sections.
//!   Hardware TSX is not reachable from stable Rust (and is fused off on
//!   current parts), so this is emulated with striped spinlocks; like RTM it
//!   permits SIMD inside the critical section, unlike per-element CAS.
//! * [`UpdateStrategy::RaceFree`] — Algorithm 4: each thread owns a
//!   contiguous row range `[M·tid/T, M·(tid+1)/T)` and scans the *entire*
//!   index list, applying only the updates that land in its range. No
//!   synchronization, better locality, but load-imbalanced for clustered
//!   indices.
//!
//! [`fused_backward_update`] skips materializing `dW[NS][E]` entirely and
//! scatters `α·dY[n]` straight into the owned rows — the standalone-only
//! optimization the paper credits with up to 1.6× on embedding updates.

// Index-based loops in this module mirror the paper's Algorithms 1-4
// pseudocode line for line; keep them index-based for reviewability.
#![allow(clippy::needless_range_loop)]

use crate::threadpool::ThreadPool;
use dlrm_tensor::util::partition_range;
use dlrm_tensor::Matrix;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

/// The four update strategies of Section III-A / Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateStrategy {
    /// Single-threaded Algorithm 3 (the naive-framework baseline).
    Reference,
    /// Parallel over lookups with per-element CAS float adds.
    AtomicXchg,
    /// Optimistic row-granular critical sections (RTM emulated via striped
    /// spinlocks), SIMD inside the section.
    Rtm,
    /// Algorithm 4: race-free row-range ownership.
    RaceFree,
}

impl UpdateStrategy {
    /// All strategies in Figure 7's bar order.
    pub const ALL: [UpdateStrategy; 4] = [
        UpdateStrategy::Reference,
        UpdateStrategy::AtomicXchg,
        UpdateStrategy::Rtm,
        UpdateStrategy::RaceFree,
    ];
}

impl std::fmt::Display for UpdateStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            UpdateStrategy::Reference => "Reference",
            UpdateStrategy::AtomicXchg => "Atomic XCHG",
            UpdateStrategy::Rtm => "RTM",
            UpdateStrategy::RaceFree => "Race Free",
        };
        f.write_str(s)
    }
}

fn check_bags(indices: &[u32], offsets: &[usize], m: usize) {
    assert!(!offsets.is_empty(), "offsets must have N+1 entries");
    assert_eq!(
        *offsets.last().unwrap(),
        indices.len(),
        "last offset must equal number of lookups"
    );
    debug_assert!(
        offsets.windows(2).all(|w| w[0] <= w[1]),
        "offsets must be sorted"
    );
    debug_assert!(
        indices.iter().all(|&i| (i as usize) < m),
        "index out of table bounds"
    );
}

// ---------------------------------------------------------------------------
// Forward (Algorithm 1)
// ---------------------------------------------------------------------------

/// Reference forward: the scalar, functionality-first loop nest of
/// Algorithm 1 with no parallelism — deliberately naive.
pub fn forward_reference(weight: &Matrix, indices: &[u32], offsets: &[usize], out: &mut Matrix) {
    let n = offsets.len() - 1;
    let e = weight.cols();
    check_bags(indices, offsets, weight.rows());
    assert_eq!(out.shape(), (n, e), "forward output shape");
    for bag in 0..n {
        for j in 0..e {
            out[(bag, j)] = 0.0;
        }
        for s in offsets[bag]..offsets[bag + 1] {
            let ind = indices[s] as usize;
            for j in 0..e {
                out[(bag, j)] += weight[(ind, j)];
            }
        }
    }
}

/// Optimized forward: parallel over bags, vectorized row accumulation.
/// This is the GUPS-like kernel expected to run at memory bandwidth.
pub fn forward(
    pool: &ThreadPool,
    weight: &Matrix,
    indices: &[u32],
    offsets: &[usize],
    out: &mut Matrix,
) {
    let n = offsets.len() - 1;
    let e = weight.cols();
    check_bags(indices, offsets, weight.rows());
    assert_eq!(out.shape(), (n, e), "forward output shape");
    let out_base = crate::gemm::SendMutPtr(out.as_mut_slice().as_mut_ptr());

    pool.parallel_for(n, move |_tid, bags| {
        for bag in bags {
            // SAFETY: each bag row is owned by exactly one thread.
            let out_row = unsafe { std::slice::from_raw_parts_mut(out_base.get().add(bag * e), e) };
            out_row.fill(0.0);
            for s in offsets[bag]..offsets[bag + 1] {
                let src = weight.row(indices[s] as usize);
                for (o, &w) in out_row.iter_mut().zip(src) {
                    *o += w;
                }
            }
        }
    });
}

// ---------------------------------------------------------------------------
// Backward (Algorithm 2)
// ---------------------------------------------------------------------------

/// Backward: expands `dY[N][E]` into per-lookup gradient rows `dW[NS][E]`.
/// (Each lookup in bag `n` receives a copy of `dY[n]` — the multi-hot
/// weights are all 1.)
pub fn backward(pool: &ThreadPool, dy: &Matrix, offsets: &[usize], dw: &mut Matrix) {
    let n = offsets.len() - 1;
    let e = dy.cols();
    assert_eq!(dy.rows(), n, "backward dY rows");
    assert_eq!(
        dw.shape(),
        (*offsets.last().unwrap(), e),
        "backward dW shape"
    );
    let dw_base = crate::gemm::SendMutPtr(dw.as_mut_slice().as_mut_ptr());

    pool.parallel_for(n, move |_tid, bags| {
        for bag in bags {
            let src = dy.row(bag);
            for s in offsets[bag]..offsets[bag + 1] {
                // SAFETY: lookup slots s are partitioned by bag, and bags are
                // partitioned across threads.
                let dst = unsafe { std::slice::from_raw_parts_mut(dw_base.get().add(s * e), e) };
                dst.copy_from_slice(src);
            }
        }
    });
}

// ---------------------------------------------------------------------------
// Update (Algorithms 3 & 4)
// ---------------------------------------------------------------------------

/// Number of lock stripes for the RTM-emulation strategy. Power of two,
/// large enough that uniform random rows rarely collide on a stripe.
const RTM_STRIPES: usize = 1024;

/// A minimal test-and-test-and-set spinlock used as the RTM surrogate.
struct StripeLock(AtomicBool);

impl StripeLock {
    #[inline]
    fn lock(&self) {
        loop {
            if !self.0.swap(true, Ordering::Acquire) {
                return;
            }
            while self.0.load(Ordering::Relaxed) {
                std::hint::spin_loop();
            }
        }
    }

    #[inline]
    fn unlock(&self) {
        self.0.store(false, Ordering::Release);
    }
}

/// Applies `W[indices[i]] += alpha * dW[i]` for all `NS` lookups using the
/// chosen strategy. Pass `alpha = -lr` for an SGD step.
pub fn update(
    pool: &ThreadPool,
    strategy: UpdateStrategy,
    weight: &mut Matrix,
    dw: &Matrix,
    indices: &[u32],
    alpha: f32,
) {
    let (m, e) = weight.shape();
    assert_eq!(dw.shape(), (indices.len(), e), "update dW shape");
    debug_assert!(indices.iter().all(|&i| (i as usize) < m));

    match strategy {
        UpdateStrategy::Reference => update_reference(weight, dw, indices, alpha),
        UpdateStrategy::AtomicXchg => update_atomic(pool, weight, dw, indices, alpha),
        UpdateStrategy::Rtm => update_rtm(pool, weight, dw, indices, alpha),
        UpdateStrategy::RaceFree => update_race_free(pool, weight, dw, indices, alpha),
    }
}

/// Algorithm 3, single-threaded.
fn update_reference(weight: &mut Matrix, dw: &Matrix, indices: &[u32], alpha: f32) {
    let e = weight.cols();
    for (i, &ind) in indices.iter().enumerate() {
        for j in 0..e {
            weight[(ind as usize, j)] += alpha * dw[(i, j)];
        }
    }
}

/// The *framework-naive* update emulating the PyTorch-v1.4 CPU backend the
/// paper profiled ("a naive CPU backend implementation which was focused on
/// functionality instead of performance" — the kernel that made 99% of the
/// reference DLRM's runtime). It follows the framework's sparse-gradient
/// pipeline literally:
///
/// 1. **coalesce** the sparse gradient: per-step allocation of an ordered
///    row → gradient-row map, one boxed row per unique index, f64
///    accumulation of duplicates (what `Tensor::coalesce` does via sort);
/// 2. **apply** with accessor-style element addressing: flat offset
///    re-derived from `(row, col)` per scalar, bounds-checked, through a
///    dynamically dispatched accumulate (the type-erased scalar kernel).
///
/// Numerically equivalent to Algorithm 3 up to the f64 rounding of each
/// accumulate and the per-row (instead of per-lookup) application order —
/// but at framework speed.
pub fn update_framework_naive(weight: &mut Matrix, dw: &Matrix, indices: &[u32], alpha: f32) {
    let (rows, e) = weight.shape();
    // Step 1: coalesce duplicates into an ordered sparse structure.
    let mut coalesced: std::collections::BTreeMap<u32, Vec<f64>> =
        std::collections::BTreeMap::new();
    for (i, &ind) in indices.iter().enumerate() {
        let entry = coalesced.entry(ind).or_insert_with(|| vec![0.0f64; e]);
        for j in 0..e {
            entry[j] += alpha as f64 * dw[(i, j)] as f64;
        }
    }
    // Step 2: scalar accessor-style application.
    let accumulate: Box<dyn Fn(f64, f64) -> f64> = Box::new(|w, g| w + g);
    for (ind, grad_row) in coalesced {
        for (j, &g) in grad_row.iter().enumerate() {
            let r = ind as usize;
            assert!(r < rows && j < e, "index out of bounds");
            let flat = r * e + j;
            let w = weight.as_slice()[flat] as f64;
            weight.as_mut_slice()[flat] = std::hint::black_box(accumulate(w, g)) as f32;
        }
    }
}

/// CAS loop implementing a float atomic add on a `u32` cell.
#[inline]
fn atomic_add_f32(cell: &AtomicU32, v: f32) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let new = (f32::from_bits(cur) + v).to_bits();
        match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

/// Parallel over lookups; per-element CAS adds.
fn update_atomic(pool: &ThreadPool, weight: &mut Matrix, dw: &Matrix, indices: &[u32], alpha: f32) {
    let e = weight.cols();
    let len = weight.len();
    // SAFETY: AtomicU32 has the same size/alignment as f32; all concurrent
    // access during this call goes through the atomic view.
    let cells = unsafe {
        std::slice::from_raw_parts(weight.as_mut_slice().as_ptr().cast::<AtomicU32>(), len)
    };

    pool.parallel_for(indices.len(), move |_tid, lookups| {
        for i in lookups {
            let base = indices[i] as usize * e;
            let grad = dw.row(i);
            for (j, &g) in grad.iter().enumerate() {
                atomic_add_f32(&cells[base + j], alpha * g);
            }
        }
    });
}

/// Optimistic row-granular critical sections (RTM surrogate): lock the
/// stripe owning the row, then do a vectorized row update.
fn update_rtm(pool: &ThreadPool, weight: &mut Matrix, dw: &Matrix, indices: &[u32], alpha: f32) {
    let e = weight.cols();
    let locks: Vec<StripeLock> = (0..RTM_STRIPES)
        .map(|_| StripeLock(AtomicBool::new(false)))
        .collect();
    let w_base = crate::gemm::SendMutPtr(weight.as_mut_slice().as_mut_ptr());

    pool.parallel_for(indices.len(), |_tid, lookups| {
        for i in lookups {
            let row = indices[i] as usize;
            let grad = dw.row(i);
            let lock = &locks[row & (RTM_STRIPES - 1)];
            lock.lock();
            // SAFETY: the stripe lock serializes all writers of this row
            // (rows map to exactly one stripe).
            let dst = unsafe { std::slice::from_raw_parts_mut(w_base.get().add(row * e), e) };
            for (wv, &g) in dst.iter_mut().zip(grad) {
                *wv += alpha * g;
            }
            lock.unlock();
        }
    });
}

/// Algorithm 4: every thread scans all lookups, applying only those whose
/// row falls in its owned range.
fn update_race_free(
    pool: &ThreadPool,
    weight: &mut Matrix,
    dw: &Matrix,
    indices: &[u32],
    alpha: f32,
) {
    let (m, e) = weight.shape();
    let t = pool.num_threads();
    let w_base = crate::gemm::SendMutPtr(weight.as_mut_slice().as_mut_ptr());

    pool.broadcast(|tid| {
        let owned = partition_range(m, t, tid);
        for (i, &ind) in indices.iter().enumerate() {
            let row = ind as usize;
            if owned.contains(&row) {
                // SAFETY: row ranges are disjoint across threads.
                let dst = unsafe { std::slice::from_raw_parts_mut(w_base.get().add(row * e), e) };
                for (wv, &g) in dst.iter_mut().zip(dw.row(i)) {
                    *wv += alpha * g;
                }
            }
        }
    });
}

// ---------------------------------------------------------------------------
// Fused backward + update
// ---------------------------------------------------------------------------

/// Fused Algorithm 2 + Algorithm 4: scatters `alpha · dY[n]` directly into
/// the owned table rows, never materializing the `dW[NS][E]` intermediate.
/// Standalone-only in the paper (framework autograd boundaries prevent the
/// fusion); measured there at up to 1.6× for embedding updates.
pub fn fused_backward_update(
    pool: &ThreadPool,
    weight: &mut Matrix,
    dy: &Matrix,
    indices: &[u32],
    offsets: &[usize],
    alpha: f32,
) {
    let (m, e) = weight.shape();
    let n = offsets.len() - 1;
    assert_eq!(dy.shape(), (n, e), "fused update dY shape");
    check_bags(indices, offsets, m);
    let t = pool.num_threads();
    let w_base = crate::gemm::SendMutPtr(weight.as_mut_slice().as_mut_ptr());

    pool.broadcast(|tid| {
        let owned = partition_range(m, t, tid);
        for bag in 0..n {
            let grad = dy.row(bag);
            for s in offsets[bag]..offsets[bag + 1] {
                let row = indices[s] as usize;
                if owned.contains(&row) {
                    // SAFETY: row ranges are disjoint across threads.
                    let dst =
                        unsafe { std::slice::from_raw_parts_mut(w_base.get().add(row * e), e) };
                    for (wv, &g) in dst.iter_mut().zip(grad) {
                        *wv += alpha * g;
                    }
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrm_tensor::assert_allclose;
    use dlrm_tensor::init::{seeded_rng, uniform};
    use rand::Rng;

    /// Random bag structure: n bags, up to `max_p` lookups each.
    fn random_bags(m: usize, n: usize, max_p: usize, seed: u64) -> (Vec<u32>, Vec<usize>) {
        let mut rng = seeded_rng(seed, 17);
        let mut offsets = vec![0usize];
        let mut indices = vec![];
        for _ in 0..n {
            let p = rng.gen_range(0..=max_p);
            for _ in 0..p {
                indices.push(rng.gen_range(0..m as u32));
            }
            offsets.push(indices.len());
        }
        (indices, offsets)
    }

    #[test]
    fn forward_matches_reference() {
        let pool = ThreadPool::new(4);
        let mut rng = seeded_rng(1, 0);
        let w = uniform(50, 16, -1.0, 1.0, &mut rng);
        let (indices, offsets) = random_bags(50, 33, 8, 2);
        let n = offsets.len() - 1;
        let mut want = Matrix::zeros(n, 16);
        forward_reference(&w, &indices, &offsets, &mut want);
        let mut got = Matrix::zeros(n, 16);
        forward(&pool, &w, &indices, &offsets, &mut got);
        assert_eq!(got.as_slice(), want.as_slice());
    }

    #[test]
    fn forward_empty_bag_yields_zero_row() {
        let pool = ThreadPool::new(2);
        let w = Matrix::from_fn(4, 3, |r, _| r as f32 + 1.0);
        let indices = vec![0u32, 2];
        let offsets = vec![0usize, 1, 1, 2]; // bag 1 is empty
        let mut out = Matrix::zeros(3, 3);
        forward(&pool, &w, &indices, &offsets, &mut out);
        assert_eq!(out.row(0), &[1.0, 1.0, 1.0]);
        assert_eq!(out.row(1), &[0.0, 0.0, 0.0]);
        assert_eq!(out.row(2), &[3.0, 3.0, 3.0]);
    }

    #[test]
    fn forward_is_sparse_matrix_product() {
        // L = A^T W with multi-hot A: check one bag against explicit sum.
        let pool = ThreadPool::new(2);
        let w = Matrix::from_fn(6, 2, |r, c| (r * 2 + c) as f32);
        let indices = vec![1u32, 1, 4]; // repeated index counts twice
        let offsets = vec![0usize, 3];
        let mut out = Matrix::zeros(1, 2);
        forward(&pool, &w, &indices, &offsets, &mut out);
        assert_eq!(out.row(0), &[2.0 + 2.0 + 8.0, 3.0 + 3.0 + 9.0]);
    }

    #[test]
    fn backward_expands_rows() {
        let pool = ThreadPool::new(3);
        let dy = Matrix::from_fn(2, 4, |r, c| (r * 10 + c) as f32);
        let offsets = vec![0usize, 3, 5];
        let mut dw = Matrix::zeros(5, 4);
        backward(&pool, &dy, &offsets, &mut dw);
        for s in 0..3 {
            assert_eq!(dw.row(s), dy.row(0), "lookup {s}");
        }
        for s in 3..5 {
            assert_eq!(dw.row(s), dy.row(1), "lookup {s}");
        }
    }

    /// All four strategies must produce the same table (up to FP
    /// reassociation in the atomic strategy).
    fn check_update_agreement(m: usize, e: usize, n: usize, max_p: usize, seed: u64) {
        let pool = ThreadPool::new(4);
        let mut rng = seeded_rng(seed, 3);
        let w0 = uniform(m, e, -1.0, 1.0, &mut rng);
        let (indices, offsets) = random_bags(m, n, max_p, seed + 1);
        let ns = *offsets.last().unwrap();
        let dw = uniform(ns, e, -1.0, 1.0, &mut rng);
        let alpha = -0.05f32;

        let mut want = w0.clone();
        update(
            &pool,
            UpdateStrategy::Reference,
            &mut want,
            &dw,
            &indices,
            alpha,
        );

        for strat in [
            UpdateStrategy::AtomicXchg,
            UpdateStrategy::Rtm,
            UpdateStrategy::RaceFree,
        ] {
            let mut got = w0.clone();
            update(&pool, strat, &mut got, &dw, &indices, alpha);
            assert_allclose(
                got.as_slice(),
                want.as_slice(),
                1e-5,
                &format!("update {strat}"),
            );
        }
    }

    #[test]
    fn update_strategies_agree_uniform_indices() {
        check_update_agreement(64, 8, 40, 6, 10);
    }

    #[test]
    fn update_strategies_agree_high_contention() {
        // Tiny table: every strategy hammers the same few rows.
        check_update_agreement(3, 16, 64, 8, 11);
    }

    #[test]
    fn update_strategies_agree_single_row_table() {
        check_update_agreement(1, 4, 16, 4, 12);
    }

    #[test]
    fn race_free_is_bit_exact_vs_reference() {
        // Unlike the atomic strategy, race-free preserves the per-row
        // application order (index-list order), so it is bit-identical.
        let pool = ThreadPool::new(4);
        let mut rng = seeded_rng(13, 0);
        let w0 = uniform(32, 8, -1.0, 1.0, &mut rng);
        let (indices, offsets) = random_bags(32, 50, 5, 14);
        let ns = *offsets.last().unwrap();
        let dw = uniform(ns, 8, -1.0, 1.0, &mut rng);

        let mut want = w0.clone();
        update(
            &pool,
            UpdateStrategy::Reference,
            &mut want,
            &dw,
            &indices,
            -0.1,
        );
        let mut got = w0.clone();
        update(
            &pool,
            UpdateStrategy::RaceFree,
            &mut got,
            &dw,
            &indices,
            -0.1,
        );
        assert_eq!(got.as_slice(), want.as_slice());
    }

    #[test]
    fn fused_equals_backward_then_update() {
        let pool = ThreadPool::new(4);
        let mut rng = seeded_rng(15, 0);
        let w0 = uniform(40, 8, -1.0, 1.0, &mut rng);
        let (indices, offsets) = random_bags(40, 25, 6, 16);
        let n = offsets.len() - 1;
        let ns = *offsets.last().unwrap();
        let dy = uniform(n, 8, -1.0, 1.0, &mut rng);
        let alpha = -0.02f32;

        // Unfused: backward expand, then race-free update.
        let mut dw = Matrix::zeros(ns, 8);
        backward(&pool, &dy, &offsets, &mut dw);
        let mut want = w0.clone();
        update(
            &pool,
            UpdateStrategy::RaceFree,
            &mut want,
            &dw,
            &indices,
            alpha,
        );

        let mut got = w0.clone();
        fused_backward_update(&pool, &mut got, &dy, &indices, &offsets, alpha);
        assert_allclose(got.as_slice(), want.as_slice(), 1e-6, "fused");
    }

    #[test]
    fn framework_naive_matches_reference() {
        let mut rng = seeded_rng(44, 0);
        let w0 = uniform(20, 8, -1.0, 1.0, &mut rng);
        let (indices, offsets) = random_bags(20, 30, 4, 45);
        let _ = offsets;
        let ns = indices.len();
        let dw = uniform(ns, 8, -1.0, 1.0, &mut rng);
        let pool = ThreadPool::new(1);

        let mut want = w0.clone();
        update(
            &pool,
            UpdateStrategy::Reference,
            &mut want,
            &dw,
            &indices,
            -0.07,
        );
        let mut got = w0.clone();
        update_framework_naive(&mut got, &dw, &indices, -0.07);
        assert_allclose(got.as_slice(), want.as_slice(), 1e-6, "framework naive");
    }

    #[test]
    fn update_rows_not_referenced_are_untouched() {
        let pool = ThreadPool::new(2);
        let w0 = Matrix::from_fn(8, 2, |r, _| r as f32);
        let indices = vec![3u32];
        let dw = Matrix::from_slice(1, 2, &[1.0, 1.0]);
        for strat in UpdateStrategy::ALL {
            let mut w = w0.clone();
            update(&pool, strat, &mut w, &dw, &indices, 1.0);
            for r in 0..8 {
                if r != 3 {
                    assert_eq!(w.row(r), w0.row(r), "{strat} touched row {r}");
                }
            }
            assert_eq!(w.row(3), &[4.0, 4.0]);
        }
    }

    #[test]
    fn atomic_add_f32_is_correct_under_contention() {
        let cell = AtomicU32::new(0.0f32.to_bits());
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        atomic_add_f32(&cell, 1.0);
                    }
                });
            }
        });
        assert_eq!(f32::from_bits(cell.load(Ordering::Relaxed)), 4000.0);
    }

    #[test]
    #[should_panic(expected = "last offset")]
    fn forward_rejects_inconsistent_offsets() {
        let pool = ThreadPool::new(1);
        let w = Matrix::zeros(4, 2);
        let mut out = Matrix::zeros(1, 2);
        forward(&pool, &w, &[0, 1], &[0usize, 1], &mut out);
    }
}
