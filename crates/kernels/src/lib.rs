//! # dlrm-kernels — single-socket compute kernels
//!
//! From-scratch implementations of every compute kernel the paper's
//! single-socket sections (III and VI-A/C) analyze:
//!
//! * [`threadpool`] — a persistent worker-team thread pool with static work
//!   partitioning. The paper hand-manages thread teams (e.g. dedicating
//!   `S` cores of a socket to SGD/communication and `T − S` to GEMMs), so
//!   the pool exposes explicit thread ids and team sizes rather than
//!   work-stealing.
//! * [`gemm`] — GEMM kernels in three tiers mirroring Figure 5's three
//!   implementations: a naive reference, a "large flat GEMM" path
//!   (PyTorch/MKL-style), and the blocked batch-reduce GEMM of Algorithm 5
//!   with AVX2/AVX-512 microkernels selected at runtime.
//! * [`embedding`] — EmbeddingBag forward (Algorithm 1), backward
//!   (Algorithm 2) and the four update strategies of Section III-A:
//!   reference, atomic compare-exchange, RTM-style optimistic striped
//!   locking, and the race-free row-partitioned update (Algorithm 4), plus
//!   the fused backward+update the paper measured standalone. The engine
//!   adds [`embedding::rowops`] (shared scalar/AVX2/AVX-512 row primitives
//!   with software prefetch, bit-identical across tiers) and
//!   [`embedding::plan::BagPlan`] (per-batch counting-sort bucketing that
//!   turns the race-free and fused updates from O(NS·T) scans into O(NS)
//!   work — `UpdateStrategy::Bucketed`).
//! * [`activations`] / [`loss`] — ReLU, sigmoid and binary cross-entropy
//!   with their backward passes.
//! * [`sgd`] — dense SGD including the Split-SGD-BF16 step.
//! * [`bf16wire`] — SIMD BF16 narrow/widen tiers used by the comm layer's
//!   wire-precision path (bitwise identical across tiers, like `rowops`).
//! * [`int8wire`] — SIMD scaled-INT8 quantize/dequantize tiers for the
//!   deeper (4×) wire tier, same cross-tier bit-exactness contract.

pub mod activations;
pub mod bf16wire;
pub mod embedding;
pub mod gemm;
pub mod int8wire;
pub mod loss;
pub mod sgd;
pub mod threadpool;

pub use threadpool::ThreadPool;
