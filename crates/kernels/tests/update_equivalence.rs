//! Equivalence of the Section III-A update strategies (plus `Bucketed` and
//! the fused backward+update, full-scan and planned) against
//! [`UpdateStrategy::Reference`] on *adversarial* index sets — the
//! distributions where the parallel strategies actually race: hot rows,
//! all-duplicates, empty bags, indices clustered inside one thread's row
//! range, and degenerate tables — across several thread counts (including
//! one that does not divide the table evenly), and under every forced
//! SIMD tier available at runtime.

use dlrm_kernels::embedding::rowops::available_isas;
use dlrm_kernels::embedding::{
    backward, fused_backward_update, fused_backward_update_planned, update, BagPlan, UpdateStrategy,
};
use dlrm_kernels::gemm::micro::set_isa_override;
use dlrm_kernels::ThreadPool;
use dlrm_tensor::assert_allclose;
use dlrm_tensor::init::{seeded_rng, uniform};
use dlrm_tensor::Matrix;

const THREADS: [usize; 3] = [1, 4, 7];

/// A bag layout plus the table geometry it indexes.
struct Case {
    name: &'static str,
    m: usize,
    e: usize,
    indices: Vec<u32>,
    offsets: Vec<usize>,
}

/// The adversarial index sets: each one maximizes a different failure mode
/// (write contention, lock convoying, ownership imbalance, empty work).
fn adversarial_cases() -> Vec<Case> {
    let mut cases = Vec::new();

    // Hot rows: 200 lookups over a 64-row table, 90% of them hitting rows
    // 0..4 (Zipf-like skew — the paper's motivating access pattern).
    {
        let mut rng = seeded_rng(71, 0);
        let mut indices = Vec::new();
        let mut offsets = vec![0usize];
        use rand::Rng;
        for _ in 0..50 {
            for _ in 0..4 {
                let hot = rng.gen_range(0u32..100) < 90;
                indices.push(if hot {
                    rng.gen_range(0u32..4)
                } else {
                    rng.gen_range(4u32..64)
                });
            }
            offsets.push(indices.len());
        }
        cases.push(Case {
            name: "hot-rows",
            m: 64,
            e: 16,
            indices,
            offsets,
        });
    }

    // All-duplicates: every lookup in every bag is the same row — maximum
    // contention, and the reduction order must still match Reference.
    cases.push(Case {
        name: "all-duplicates",
        m: 8,
        e: 8,
        indices: vec![5; 48],
        offsets: (0..=12).map(|b| b * 4).collect(),
    });

    // Empty bags interleaved with full ones (bag 0, 2, 4, ... are empty).
    {
        let mut indices = Vec::new();
        let mut offsets = vec![0usize];
        for bag in 0..16 {
            if bag % 2 == 1 {
                for k in 0..3u32 {
                    indices.push((bag as u32 * 3 + k) % 20);
                }
            }
            offsets.push(indices.len());
        }
        cases.push(Case {
            name: "empty-bags",
            m: 20,
            e: 12,
            indices,
            offsets,
        });
    }

    // Empty index list: zero lookups across 5 bags — nothing may change.
    cases.push(Case {
        name: "empty-list",
        m: 10,
        e: 4,
        indices: vec![],
        offsets: vec![0; 6],
    });

    // Single-row table: every thread's owned range but one is empty under
    // RaceFree, and every lookup collides under the others.
    cases.push(Case {
        name: "single-row",
        m: 1,
        e: 6,
        indices: vec![0; 30],
        offsets: (0..=10).map(|b| b * 3).collect(),
    });

    // Clustered in one thread's range: a 256-row table where every lookup
    // lands in rows 0..8 — under the row-range partition one bucket owns
    // *all* the work (worst-case load imbalance for RaceFree/Bucketed).
    {
        let mut rng = seeded_rng(72, 0);
        use rand::Rng;
        let indices: Vec<u32> = (0..240).map(|_| rng.gen_range(0u32..8)).collect();
        cases.push(Case {
            name: "clustered-one-range",
            m: 256,
            e: 16,
            indices,
            offsets: (0..=60).map(|b| b * 4).collect(),
        });
    }

    cases
}

#[test]
fn all_strategies_match_reference_on_adversarial_bags() {
    for case in adversarial_cases() {
        let ns = *case.offsets.last().unwrap();
        let mut rng = seeded_rng(5, 9);
        let w0 = uniform(case.m, case.e, -1.0, 1.0, &mut rng);
        let dw = uniform(ns.max(1), case.e, -1.0, 1.0, &mut rng);
        let dw = Matrix::from_slice(ns, case.e, &dw.as_slice()[..ns * case.e]);
        let alpha = -0.03f32;

        let ref_pool = ThreadPool::new(1);
        let mut want = w0.clone();
        update(
            &ref_pool,
            UpdateStrategy::Reference,
            &mut want,
            &dw,
            &case.indices,
            alpha,
        );

        for threads in THREADS {
            let pool = ThreadPool::new(threads);
            for strat in [
                UpdateStrategy::AtomicXchg,
                UpdateStrategy::Rtm,
                UpdateStrategy::RaceFree,
                UpdateStrategy::Bucketed,
            ] {
                let mut got = w0.clone();
                update(&pool, strat, &mut got, &dw, &case.indices, alpha);
                assert_allclose(
                    got.as_slice(),
                    want.as_slice(),
                    1e-5,
                    &format!("{strat} on {} with {threads} threads", case.name),
                );
            }
            // RaceFree and Bucketed preserve index-list application order
            // per row, so they must be *bit*-identical, not merely close.
            for strat in [UpdateStrategy::RaceFree, UpdateStrategy::Bucketed] {
                let mut got = w0.clone();
                update(&pool, strat, &mut got, &dw, &case.indices, alpha);
                assert_eq!(
                    got.as_slice(),
                    want.as_slice(),
                    "{strat} must be bit-exact on {} with {threads} threads",
                    case.name
                );
            }
        }
    }
}

/// The SIMD row primitives keep all tiers bitwise identical (vector mul +
/// vector add — never FMA), so every strategy must agree with the scalar
/// Reference under every *forced* tier too. Only tiers the host actually
/// supports are exercised; forcing stays inside this single test so the
/// global override never races another test.
#[test]
fn strategies_agree_under_every_forced_isa_tier() {
    let case = &adversarial_cases()[0]; // hot-rows
    let ns = *case.offsets.last().unwrap();
    let mut rng = seeded_rng(7, 3);
    let w0 = uniform(case.m, case.e, -1.0, 1.0, &mut rng);
    let dw = uniform(ns, case.e, -1.0, 1.0, &mut rng);
    let alpha = -0.03f32;

    // Scalar-tier reference, computed once.
    set_isa_override(Some(dlrm_kernels::gemm::micro::Isa::Scalar));
    let ref_pool = ThreadPool::new(1);
    let mut want = w0.clone();
    update(
        &ref_pool,
        UpdateStrategy::Reference,
        &mut want,
        &dw,
        &case.indices,
        alpha,
    );

    for isa in available_isas() {
        set_isa_override(Some(isa));
        let pool = ThreadPool::new(4);
        for strat in [UpdateStrategy::RaceFree, UpdateStrategy::Bucketed] {
            let mut got = w0.clone();
            update(&pool, strat, &mut got, &dw, &case.indices, alpha);
            assert_eq!(
                got.as_slice(),
                want.as_slice(),
                "{strat} under forced {isa:?} must match the scalar reference bitwise"
            );
        }
        for strat in [UpdateStrategy::AtomicXchg, UpdateStrategy::Rtm] {
            let mut got = w0.clone();
            update(&pool, strat, &mut got, &dw, &case.indices, alpha);
            assert_allclose(
                got.as_slice(),
                want.as_slice(),
                1e-5,
                &format!("{strat} under forced {isa:?}"),
            );
        }
    }
    set_isa_override(None);
}

#[test]
fn fused_backward_update_matches_unfused_on_adversarial_bags() {
    for case in adversarial_cases() {
        let n = case.offsets.len() - 1;
        let ns = *case.offsets.last().unwrap();
        let mut rng = seeded_rng(6, 2);
        let w0 = uniform(case.m, case.e, -1.0, 1.0, &mut rng);
        let dy = uniform(n, case.e, -1.0, 1.0, &mut rng);
        let alpha = -0.05f32;

        for threads in THREADS {
            let pool = ThreadPool::new(threads);

            // Unfused: materialize dW[NS][E], then reference update.
            let mut dw = Matrix::zeros(ns, case.e);
            backward(&pool, &dy, &case.offsets, &mut dw);
            let mut want = w0.clone();
            update(
                &pool,
                UpdateStrategy::Reference,
                &mut want,
                &dw,
                &case.indices,
                alpha,
            );

            let mut got = w0.clone();
            fused_backward_update(&pool, &mut got, &dy, &case.indices, &case.offsets, alpha);
            assert_allclose(
                got.as_slice(),
                want.as_slice(),
                1e-6,
                &format!("fused on {} with {threads} threads", case.name),
            );

            // The plan-driven fused kernel applies the same updates in the
            // same per-row order — bit-exact against the full-scan fused.
            let mut plan = BagPlan::new();
            plan.build(&pool, &case.indices, case.m);
            plan.attach_bags(&pool, &case.offsets);
            let mut planned = w0.clone();
            fused_backward_update_planned(
                &pool,
                &mut planned,
                &dy,
                &case.indices,
                &case.offsets,
                alpha,
                &plan,
            );
            assert_eq!(
                planned.as_slice(),
                got.as_slice(),
                "planned fused must be bit-exact vs full-scan fused on {} with {threads} threads",
                case.name
            );
        }
    }
}

#[test]
fn empty_index_list_leaves_table_untouched() {
    let w0 = Matrix::from_fn(10, 4, |r, c| (r * 4 + c) as f32);
    let dw = Matrix::zeros(0, 4);
    for threads in THREADS {
        let pool = ThreadPool::new(threads);
        for strat in UpdateStrategy::ALL {
            let mut w = w0.clone();
            update(&pool, strat, &mut w, &dw, &[], 1.0);
            assert_eq!(
                w.as_slice(),
                w0.as_slice(),
                "{strat} with {threads} threads"
            );
        }
    }
}
