//! Property-based tests: optimized kernels vs. naive references under
//! arbitrary shapes, bag structures and index distributions.

use dlrm_kernels::embedding::{self, DedupPlan, UpdateStrategy};
use dlrm_kernels::gemm;
use dlrm_kernels::ThreadPool;
use dlrm_tensor::init::{seeded_rng, uniform};
use dlrm_tensor::{assert_allclose, Matrix};
use proptest::prelude::*;

/// Arbitrary bag structure over a table of `m` rows: a vector of bag sizes
/// plus a flat index list.
fn bags(m: usize) -> impl Strategy<Value = (Vec<u32>, Vec<usize>)> {
    prop::collection::vec(prop::collection::vec(0..m as u32, 0..8), 1..24).prop_map(|bag_lists| {
        let mut offsets = vec![0usize];
        let mut indices = vec![];
        for bag in bag_lists {
            indices.extend(bag);
            offsets.push(indices.len());
        }
        (indices, offsets)
    })
}

/// Pools every bag twice — directly from the table via `forward_serial`,
/// and from a "shipped once" unique-row set fanned back out — and demands
/// the results be bitwise identical. This is the exact contract the
/// distributed prefetch path relies on: deduping the transfer must not
/// perturb a single bit of the gather.
fn dedup_roundtrip_case(indices: &[u32], offsets: &[usize], m: usize, e: usize, seed: u64) {
    let isa = dlrm_kernels::gemm::micro::detect_isa();
    let mut rng = seeded_rng(seed, 6);
    let w = uniform(m, e, -1.0, 1.0, &mut rng);
    let n = offsets.len() - 1;
    let mut want = Matrix::zeros(n, e);
    embedding::forward_serial(&w, indices, offsets, &mut want);

    let mut plan = DedupPlan::new();
    plan.build(indices, m);
    // Ship each unique row once (verbatim copy)…
    let mut shipped = Matrix::zeros(plan.uniques().len().max(1), e);
    for (u, &row) in plan.uniques().iter().enumerate() {
        shipped.row_mut(u).copy_from_slice(w.row(row as usize));
    }
    // …then fan out locally, pooling each bag from the deduped set in the
    // original accumulate order.
    let mut got = Matrix::zeros(n, e);
    for bag in 0..n {
        let out = got.row_mut(bag);
        out.fill(0.0);
        for s in offsets[bag]..offsets[bag + 1] {
            embedding::rowops::accumulate(isa, out, shipped.row(plan.fanout()[s] as usize));
        }
    }
    assert_eq!(got.as_slice(), want.as_slice(), "dedup round-trip drifted");
}

#[test]
fn dedup_roundtrip_adversarial_bags() {
    // Duplicate-heavy: every bag hammers the same two hot rows.
    let indices: Vec<u32> = (0..64u32).map(|i| i % 2).collect();
    let offsets: Vec<usize> = (0..=16).map(|b| b * 4).collect();
    dedup_roundtrip_case(&indices, &offsets, 8, 5, 11);
    // Empty bags interleaved with occupied ones.
    dedup_roundtrip_case(&[3, 3, 7], &[0, 0, 2, 2, 3, 3], 9, 3, 12);
    // Single unique row across the whole batch.
    dedup_roundtrip_case(&[4; 17], &[0, 6, 6, 11, 17], 6, 7, 13);
    // Empty batch.
    dedup_roundtrip_case(&[], &[0, 0], 4, 2, 14);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn embedding_forward_matches_reference(
        (indices, offsets) in bags(37),
        e in 1usize..24,
        seed in any::<u64>(),
        threads in 1usize..6,
    ) {
        let pool = ThreadPool::new(threads);
        let mut rng = seeded_rng(seed, 0);
        let w = uniform(37, e, -1.0, 1.0, &mut rng);
        let n = offsets.len() - 1;
        let mut want = Matrix::zeros(n, e);
        embedding::forward_reference(&w, &indices, &offsets, &mut want);
        let mut got = Matrix::zeros(n, e);
        embedding::forward(&pool, &w, &indices, &offsets, &mut got);
        prop_assert_eq!(got.as_slice(), want.as_slice());
    }

    #[test]
    fn embedding_updates_agree_across_strategies(
        (indices, offsets) in bags(19),
        e in 1usize..16,
        seed in any::<u64>(),
        threads in 1usize..6,
    ) {
        let _ = &offsets;
        let pool = ThreadPool::new(threads);
        let mut rng = seeded_rng(seed, 1);
        let w0 = uniform(19, e, -1.0, 1.0, &mut rng);
        let ns = indices.len();
        let dw = uniform(ns.max(1), e, -1.0, 1.0, &mut rng);
        let dw = Matrix::from_slice(ns, e, &dw.as_slice()[..ns * e]);

        let mut want = w0.clone();
        embedding::update(&pool, UpdateStrategy::Reference, &mut want, &dw, &indices, -0.1);
        for strat in [
            UpdateStrategy::AtomicXchg,
            UpdateStrategy::Rtm,
            UpdateStrategy::RaceFree,
            UpdateStrategy::Bucketed,
        ] {
            let mut got = w0.clone();
            embedding::update(&pool, strat, &mut got, &dw, &indices, -0.1);
            assert_allclose(got.as_slice(), want.as_slice(), 1e-4, &format!("{strat}"));
        }
    }

    #[test]
    fn fused_matches_unfused(
        (indices, offsets) in bags(23),
        e in 1usize..12,
        seed in any::<u64>(),
        threads in 1usize..5,
    ) {
        let pool = ThreadPool::new(threads);
        let mut rng = seeded_rng(seed, 2);
        let w0 = uniform(23, e, -1.0, 1.0, &mut rng);
        let n = offsets.len() - 1;
        let ns = indices.len();
        let dy = uniform(n, e, -1.0, 1.0, &mut rng);

        let mut dw = Matrix::zeros(ns, e);
        embedding::backward(&pool, &dy, &offsets, &mut dw);
        let mut want = w0.clone();
        embedding::update(&pool, UpdateStrategy::RaceFree, &mut want, &dw, &indices, -0.03);

        let mut got = w0.clone();
        embedding::fused_backward_update(&pool, &mut got, &dy, &indices, &offsets, -0.03);
        assert_allclose(got.as_slice(), want.as_slice(), 1e-5, "fused");
    }

    #[test]
    fn dedup_fanout_reproduces_gather_bitwise(
        (indices, offsets) in bags(31),
        e in 1usize..16,
        seed in any::<u64>(),
    ) {
        dedup_roundtrip_case(&indices, &offsets, 31, e, seed);
    }

    #[test]
    fn par_gemm_matches_naive(
        m in 1usize..20,
        k in 1usize..40,
        n in 1usize..20,
        seed in any::<u64>(),
        threads in 1usize..5,
    ) {
        let pool = ThreadPool::new(threads);
        let mut rng = seeded_rng(seed, 3);
        let a = uniform(m, k, -1.0, 1.0, &mut rng);
        let b = uniform(k, n, -1.0, 1.0, &mut rng);
        let mut got = Matrix::zeros(m, n);
        gemm::par_gemm_nn(&pool, &a, &b, &mut got);
        let mut want = Matrix::zeros(m, n);
        gemm::gemm_nn(&a, &b, &mut want);
        assert_allclose(got.as_slice(), want.as_slice(), 1e-4, "par_gemm_nn");
    }

    #[test]
    fn blocked_fc_matches_naive_for_random_blockings(
        kb in 1usize..4, cb in 1usize..4, nb in 1usize..4,
        bk in prop::sample::select(vec![1usize, 2, 8, 16]),
        bc in 1usize..9,
        bn in 1usize..9,
        seed in any::<u64>(),
    ) {
        let pool = ThreadPool::new(3);
        let (k, c, n) = (kb * bk, cb * bc, nb * bn);
        let mut rng = seeded_rng(seed, 4);
        let w = uniform(k, c, -1.0, 1.0, &mut rng);
        let x = uniform(c, n, -1.0, 1.0, &mut rng);
        let blk = dlrm_tensor::Blocking { bn, bc, bk };

        let wb = dlrm_tensor::BlockedWeights::pack(&w, blk);
        let xb = dlrm_tensor::BlockedActivations::pack(&x, bc, bn);
        let mut yb = dlrm_tensor::BlockedActivations::zeros(k, n, bk, bn);
        gemm::fc_forward(&pool, &wb, &xb, &mut yb);

        let mut want = Matrix::zeros(k, n);
        gemm::gemm_nn(&w, &x, &mut want);
        let got = yb.unpack();
        assert_allclose(got.as_slice(), want.as_slice(), 1e-4, "blocked fwd");
    }

    #[test]
    fn bce_gradient_descent_reduces_loss(
        logits in prop::collection::vec(-3.0f32..3.0, 1..32),
        seed in any::<u64>(),
    ) {
        use dlrm_kernels::loss::{bce_with_logits_backward, bce_with_logits_loss};
        let mut rng = seeded_rng(seed, 5);
        let targets: Vec<f32> = (0..logits.len())
            .map(|_| if rand::Rng::gen_bool(&mut rng, 0.5) { 1.0 } else { 0.0 })
            .collect();
        let before = bce_with_logits_loss(&logits, &targets);
        let mut grad = vec![0.0f32; logits.len()];
        bce_with_logits_backward(&logits, &targets, &mut grad);
        let stepped: Vec<f32> = logits.iter().zip(&grad).map(|(&z, &g)| z - 1.0 * g).collect();
        let after = bce_with_logits_loss(&stepped, &targets);
        prop_assert!(after <= before + 1e-9, "loss rose: {before} -> {after}");
    }
}
