//! Cache-line-aligned `f32` storage.
//!
//! The embedding tables in DLRM are read a full row (several consecutive
//! cache lines) at a time; the GEMM microkernels use wide SIMD loads.
//! Both want storage aligned to the 64-byte cache-line boundary, which the
//! global allocator does not guarantee for `Vec<f32>`.

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::ops::{Deref, DerefMut};

/// Alignment (bytes) of every [`AlignedVec`] allocation: one x86 cache line.
pub const CACHE_LINE: usize = 64;

/// A 64-byte-aligned, zero-initialized `f32` buffer.
///
/// Unlike `Vec<f32>` the length is normally fixed at construction; tensors
/// in this workspace never grow element by element. The one exception is
/// [`AlignedVec::resize_scratch`], which lets iteration-persistent scratch
/// buffers (e.g. the embedding layer's `dW[NS][E]`) track a varying batch
/// shape without steady-state reallocations. Dereferences to `[f32]`.
pub struct AlignedVec {
    ptr: *mut f32,
    len: usize,
    /// Allocated capacity in elements (`len <= cap`); the allocation layout
    /// is always derived from `cap`.
    cap: usize,
}

// SAFETY: AlignedVec owns its allocation exclusively; it is a plain buffer
// of `f32` with no interior mutability, so moving it across threads or
// sharing `&AlignedVec` between threads is sound.
unsafe impl Send for AlignedVec {}
unsafe impl Sync for AlignedVec {}

impl AlignedVec {
    /// Allocates a zeroed buffer of `len` floats aligned to [`CACHE_LINE`].
    pub fn zeroed(len: usize) -> Self {
        if len == 0 {
            return Self {
                ptr: std::ptr::NonNull::<f32>::dangling().as_ptr(),
                len: 0,
                cap: 0,
            };
        }
        let layout = Self::layout(len);
        // SAFETY: layout has non-zero size (len > 0 checked above).
        let raw = unsafe { alloc_zeroed(layout) };
        if raw.is_null() {
            handle_alloc_error(layout);
        }
        Self {
            ptr: raw.cast::<f32>(),
            len,
            cap: len,
        }
    }

    /// Builds an aligned buffer holding a copy of `data`.
    pub fn from_slice(data: &[f32]) -> Self {
        let mut v = Self::zeroed(data.len());
        v.copy_from_slice(data);
        v
    }

    /// Builds an aligned buffer from an element-producing closure.
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> f32) -> Self {
        let mut v = Self::zeroed(len);
        for (i, x) in v.iter_mut().enumerate() {
            *x = f(i);
        }
        v
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the buffer holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Raw pointer to the first element (64-byte aligned).
    #[inline]
    pub fn as_ptr(&self) -> *const f32 {
        self.ptr
    }

    /// Mutable raw pointer to the first element (64-byte aligned).
    #[inline]
    pub fn as_mut_ptr(&mut self) -> *mut f32 {
        self.ptr
    }

    /// Resets every element to `0.0`.
    pub fn fill_zero(&mut self) {
        self.fill(0.0);
    }

    /// Allocated capacity in elements (`>= len`).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Sets the length to `new_len` with *scratch* semantics: the existing
    /// allocation is reused whenever it is large enough (no allocator
    /// traffic in steady state), and when it is not, a fresh zeroed buffer
    /// replaces it **without copying** the old contents. After a growing
    /// call the contents are unspecified; callers must fully overwrite the
    /// buffer before reading it.
    pub fn resize_scratch(&mut self, new_len: usize) {
        if new_len <= self.cap {
            self.len = new_len;
        } else {
            *self = Self::zeroed(new_len);
        }
    }

    fn layout(len: usize) -> Layout {
        Layout::from_size_align(len * std::mem::size_of::<f32>(), CACHE_LINE)
            .expect("AlignedVec layout overflow")
    }
}

impl Drop for AlignedVec {
    fn drop(&mut self) {
        if self.cap != 0 {
            // SAFETY: ptr was allocated with exactly this layout in `zeroed`.
            unsafe { dealloc(self.ptr.cast(), Self::layout(self.cap)) };
        }
    }
}

impl Deref for AlignedVec {
    type Target = [f32];
    #[inline]
    fn deref(&self) -> &[f32] {
        // SAFETY: ptr is valid for len f32s for the lifetime of self.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl DerefMut for AlignedVec {
    #[inline]
    fn deref_mut(&mut self) -> &mut [f32] {
        // SAFETY: ptr is valid for len f32s and we hold &mut self.
        unsafe { std::slice::from_raw_parts_mut(self.ptr, self.len) }
    }
}

impl Clone for AlignedVec {
    fn clone(&self) -> Self {
        Self::from_slice(self)
    }
}

impl std::fmt::Debug for AlignedVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AlignedVec(len={})", self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_is_zero_and_aligned() {
        let v = AlignedVec::zeroed(1027);
        assert_eq!(v.len(), 1027);
        assert!(v.iter().all(|&x| x == 0.0));
        assert_eq!(v.as_ptr() as usize % CACHE_LINE, 0);
    }

    #[test]
    fn empty_buffer_is_usable() {
        let v = AlignedVec::zeroed(0);
        assert!(v.is_empty());
        assert_eq!(&v[..], &[] as &[f32]);
        let _ = v.clone();
    }

    #[test]
    fn from_slice_round_trips() {
        let data: Vec<f32> = (0..257).map(|i| i as f32 * 0.5).collect();
        let v = AlignedVec::from_slice(&data);
        assert_eq!(&v[..], &data[..]);
    }

    #[test]
    fn from_fn_fills_in_order() {
        let v = AlignedVec::from_fn(8, |i| (i * i) as f32);
        assert_eq!(&v[..], &[0.0, 1.0, 4.0, 9.0, 16.0, 25.0, 36.0, 49.0]);
    }

    #[test]
    fn clone_is_deep() {
        let mut a = AlignedVec::from_slice(&[1.0, 2.0]);
        let b = a.clone();
        a[0] = 7.0;
        assert_eq!(b[0], 1.0);
    }

    #[test]
    fn fill_zero_clears() {
        let mut v = AlignedVec::from_slice(&[3.0; 33]);
        v.fill_zero();
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn resize_scratch_reuses_capacity() {
        let mut v = AlignedVec::zeroed(100);
        let p = v.as_ptr();
        v.resize_scratch(40);
        assert_eq!(v.len(), 40);
        assert_eq!(v.capacity(), 100);
        assert_eq!(v.as_ptr(), p, "shrink must not reallocate");
        v.resize_scratch(100);
        assert_eq!(v.len(), 100);
        assert_eq!(v.as_ptr(), p, "regrow within capacity must not reallocate");
        v.resize_scratch(101);
        assert_eq!(v.len(), 101);
        assert_eq!(v.capacity(), 101);
        assert!(v.iter().all(|&x| x == 0.0), "fresh allocation is zeroed");
    }

    #[test]
    fn resize_scratch_from_empty() {
        let mut v = AlignedVec::zeroed(0);
        v.resize_scratch(16);
        assert_eq!(v.len(), 16);
        assert!(v.iter().all(|&x| x == 0.0));
        v.resize_scratch(0);
        assert!(v.is_empty());
    }

    #[test]
    fn mutation_through_index() {
        let mut v = AlignedVec::zeroed(4);
        v[2] = 5.5;
        assert_eq!(v[2], 5.5);
    }

    #[test]
    fn shared_across_threads() {
        let v = std::sync::Arc::new(AlignedVec::from_fn(1024, |i| i as f32));
        let mut handles = vec![];
        for t in 0..4 {
            let v = v.clone();
            handles.push(std::thread::spawn(move || {
                v.iter().skip(t).step_by(4).sum::<f32>()
            }));
        }
        let total: f32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, (0..1024).sum::<i32>() as f32);
    }
}
