//! Blocked 4-D tensor layouts of Algorithm 5 in the paper.
//!
//! A fully-connected layer computes `Y = W · X` with `W ∈ R^{K×C}`,
//! `X ∈ R^{C×N}`, `Y ∈ R^{K×N}`. Instead of flat row-major 2-D tensors, the
//! paper blocks every dimension:
//!
//! * weights: `W[Kb][Cb][bc][bk]` with `K = Kb·bk`, `C = Cb·bc`
//! * activations (and outputs): `X[Cb][Nb][bn][bc]`, `Y[Kb][Nb][bn][bk]`
//!
//! The innermost `[bn][bc]` / `[bc][bk]` panels are the operands of the
//! batch-reduce GEMM microkernel; blocking the leading dimensions avoids the
//! large power-of-two strides that cause TLB misses and cache-conflict
//! misses. Note the activation layout is the `[Cb][Nb][bn][bc]` variant the
//! paper chose (instead of `[Nb][Cb][bn][bc]` of prior work) because it makes
//! the backward-by-weights pass symmetric with the forward pass.

use crate::aligned::AlignedVec;
use crate::matrix::Matrix;

/// Blocking factors for one fully-connected layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Blocking {
    /// Minibatch block size (`bn`).
    pub bn: usize,
    /// Input-feature block size (`bc`).
    pub bc: usize,
    /// Output-feature block size (`bk`).
    pub bk: usize,
}

impl Blocking {
    /// The default blocking used by the optimized MLP kernels: panels sized
    /// so that a `bn×bk` accumulator fits comfortably in registers/L1 and
    /// `bk` is a multiple of the 16-lane AVX-512 vector width.
    pub const DEFAULT: Blocking = Blocking {
        bn: 32,
        bc: 64,
        bk: 64,
    };

    /// Chooses a blocking that divides the given problem exactly, starting
    /// from [`Blocking::DEFAULT`] and shrinking each factor to the largest
    /// divisor of the corresponding dimension.
    pub fn for_shape(n: usize, c: usize, k: usize) -> Blocking {
        Blocking {
            bn: largest_divisor_at_most(n, Blocking::DEFAULT.bn),
            bc: largest_divisor_at_most(c, Blocking::DEFAULT.bc),
            bk: largest_divisor_at_most(k, Blocking::DEFAULT.bk),
        }
    }
}

/// Largest divisor of `n` that is `<= cap` (always >= 1 for n >= 1).
pub fn largest_divisor_at_most(n: usize, cap: usize) -> usize {
    assert!(n >= 1, "dimension must be positive");
    let mut best = 1;
    let mut d = 1;
    while d <= cap && d <= n {
        if n.is_multiple_of(d) {
            best = d;
        }
        d += 1;
    }
    best
}

/// Weight tensor in `[Kb][Cb][bc][bk]` layout.
pub struct BlockedWeights {
    data: AlignedVec,
    /// Output features.
    pub k: usize,
    /// Input features.
    pub c: usize,
    /// Blocking factors (`bn` unused here).
    pub blk: Blocking,
}

impl BlockedWeights {
    /// Number of K blocks.
    #[inline]
    pub fn kb(&self) -> usize {
        self.k / self.blk.bk
    }

    /// Number of C blocks.
    #[inline]
    pub fn cb(&self) -> usize {
        self.c / self.blk.bc
    }

    /// Zero-initialized blocked weight tensor.
    ///
    /// # Panics
    /// Panics unless `bk | k` and `bc | c`.
    pub fn zeros(k: usize, c: usize, blk: Blocking) -> Self {
        assert_eq!(k % blk.bk, 0, "bk must divide K");
        assert_eq!(c % blk.bc, 0, "bc must divide C");
        Self {
            data: AlignedVec::zeroed(k * c),
            k,
            c,
            blk,
        }
    }

    /// Packs a row-major `K×C` matrix into blocked layout.
    pub fn pack(w: &Matrix, blk: Blocking) -> Self {
        let (k, c) = w.shape();
        let mut out = Self::zeros(k, c, blk);
        out.pack_from(w);
        out
    }

    /// Re-sizes this tensor to `k×c` under `blk` with *scratch* semantics
    /// (the backing allocation is reused whenever its capacity suffices; see
    /// [`AlignedVec::resize_scratch`]) and packs `w` into it. The persistent
    /// packed-plan path uses this so steady state is allocation-free.
    pub fn pack_into(&mut self, w: &Matrix, blk: Blocking) {
        let (k, c) = w.shape();
        self.reshape_scratch(k, c, blk);
        self.pack_from(w);
    }

    /// Writes every element of `w` into the (already correctly shaped)
    /// blocked storage. Fully overwrites the buffer, so unspecified contents
    /// after a growing `resize_scratch` are fine.
    fn pack_from(&mut self, w: &Matrix) {
        assert_eq!((self.k, self.c), w.shape(), "pack_from shape mismatch");
        for kk in 0..self.k {
            for cc in 0..self.c {
                let idx = self.index_of(kk, cc);
                self.data[idx] = w[(kk, cc)];
            }
        }
    }

    /// Re-sizes to `k×c` under `blk` with scratch semantics, leaving the
    /// contents unspecified (callers must fully overwrite before reading —
    /// the accumulate-style GEMM kernels want [`Self::fill_zero`] first).
    pub fn reshape_scratch(&mut self, k: usize, c: usize, blk: Blocking) {
        assert_eq!(k % blk.bk, 0, "bk must divide K");
        assert_eq!(c % blk.bc, 0, "bc must divide C");
        self.data.resize_scratch(k * c);
        self.k = k;
        self.c = c;
        self.blk = blk;
    }

    /// Resets every element to `0.0`.
    pub fn fill_zero(&mut self) {
        self.data.fill_zero();
    }

    /// Allocated capacity in bytes (for scratch accounting).
    #[inline]
    pub fn capacity_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<f32>()
    }

    /// Unpacks back to a row-major `K×C` matrix.
    pub fn unpack(&self) -> Matrix {
        let mut m = Matrix::zeros(self.k, self.c);
        self.unpack_into(&mut m);
        m
    }

    /// Unpacks into an existing `K×C` matrix (no allocation).
    pub fn unpack_into(&self, out: &mut Matrix) {
        assert_eq!((self.k, self.c), out.shape(), "unpack_into shape mismatch");
        for kk in 0..self.k {
            for cc in 0..self.c {
                out[(kk, cc)] = self.data[self.index_of(kk, cc)];
            }
        }
    }

    /// In-place SGD step against a *flat* row-major `K×C` gradient:
    /// `W[k][c] += alpha * dW[k][c]` for every element, traversed in blocked
    /// storage order. Written as separate multiply-then-add (no FMA
    /// contraction), so each element sees exactly the arithmetic of
    /// `w += alpha * g` on the flat mirror — the update is an elementwise
    /// permutation and therefore bitwise identical to the flat step.
    pub fn add_scaled_flat(&mut self, g: &Matrix, alpha: f32) {
        assert_eq!((self.k, self.c), g.shape(), "add_scaled_flat shape");
        let Blocking { bc, bk, .. } = self.blk;
        let (kb, cb, c) = (self.kb(), self.cb(), self.c);
        let gs = g.as_slice();
        let mut idx = 0;
        for ibk in 0..kb {
            for ibc in 0..cb {
                for rc in 0..bc {
                    let col = ibc * bc + rc;
                    for rk in 0..bk {
                        let p = alpha * gs[(ibk * bk + rk) * c + col];
                        self.data[idx] += p;
                        idx += 1;
                    }
                }
            }
        }
    }

    /// Flat offset of logical element `W[k][c]`.
    ///
    /// Layout: `[Kb][Cb][bc][bk]` — within a block, `bc` is the slow axis and
    /// `bk` the contiguous one, so the microkernel's B-broadcast/A-vector
    /// FMA reads unit-stride along `bk`.
    #[inline]
    pub fn index_of(&self, k: usize, c: usize) -> usize {
        let Blocking { bc, bk, .. } = self.blk;
        let (ibk, rk) = (k / bk, k % bk);
        let (ibc, rc) = (c / bc, c % bc);
        ((ibk * self.cb() + ibc) * bc + rc) * bk + rk
    }

    /// Borrow of the `(ibk, ibc)` panel: `bc·bk` floats, `[bc][bk]` row-major.
    #[inline]
    pub fn block(&self, ibk: usize, ibc: usize) -> &[f32] {
        let Blocking { bc, bk, .. } = self.blk;
        let start = (ibk * self.cb() + ibc) * bc * bk;
        &self.data[start..start + bc * bk]
    }

    /// Mutable borrow of the `(ibk, ibc)` panel.
    #[inline]
    pub fn block_mut(&mut self, ibk: usize, ibc: usize) -> &mut [f32] {
        let Blocking { bc, bk, .. } = self.blk;
        let start = (ibk * self.cb() + ibc) * bc * bk;
        &mut self.data[start..start + bc * bk]
    }

    /// Full backing storage (block-major order).
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable full backing storage (block-major order).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }
}

/// Activation tensor in `[Cb][Nb][bn][bc]` layout (logical shape `C×N`).
///
/// Also used for outputs, which are `[Kb][Nb][bn][bk]`: identical structure
/// with `(k, bk)` in place of `(c, bc)`.
pub struct BlockedActivations {
    data: AlignedVec,
    /// Feature dimension (C for inputs, K for outputs).
    pub c: usize,
    /// Minibatch dimension.
    pub n: usize,
    /// Feature block size (`bc` for inputs, `bk` for outputs).
    pub bc: usize,
    /// Minibatch block size.
    pub bn: usize,
}

impl BlockedActivations {
    /// Number of feature blocks.
    #[inline]
    pub fn cb(&self) -> usize {
        self.c / self.bc
    }

    /// Number of minibatch blocks.
    #[inline]
    pub fn nb(&self) -> usize {
        self.n / self.bn
    }

    /// Zero-initialized blocked activation tensor.
    ///
    /// # Panics
    /// Panics unless `bc | c` and `bn | n`.
    pub fn zeros(c: usize, n: usize, bc: usize, bn: usize) -> Self {
        assert_eq!(c % bc, 0, "bc must divide C");
        assert_eq!(n % bn, 0, "bn must divide N");
        Self {
            data: AlignedVec::zeroed(c * n),
            c,
            n,
            bc,
            bn,
        }
    }

    /// Packs a row-major `C×N` matrix into blocked layout.
    pub fn pack(x: &Matrix, bc: usize, bn: usize) -> Self {
        let (c, n) = x.shape();
        let mut out = Self::zeros(c, n, bc, bn);
        out.pack_from(x);
        out
    }

    /// Re-sizes this tensor to `c×n` under `(bc, bn)` with *scratch*
    /// semantics (allocation reused when capacity suffices) and packs `x`
    /// into it — the allocation-free counterpart of [`Self::pack`].
    pub fn pack_into(&mut self, x: &Matrix, bc: usize, bn: usize) {
        let (c, n) = x.shape();
        self.reshape_scratch(c, n, bc, bn);
        self.pack_from(x);
    }

    /// Writes every element of `x` into the (already correctly shaped)
    /// blocked storage.
    fn pack_from(&mut self, x: &Matrix) {
        assert_eq!((self.c, self.n), x.shape(), "pack_from shape mismatch");
        for cc in 0..self.c {
            for nn in 0..self.n {
                let idx = self.index_of(cc, nn);
                self.data[idx] = x[(cc, nn)];
            }
        }
    }

    /// Re-sizes to `c×n` under `(bc, bn)` with scratch semantics, contents
    /// unspecified (pair with [`Self::fill_zero`] before accumulate-style
    /// kernels write into it).
    pub fn reshape_scratch(&mut self, c: usize, n: usize, bc: usize, bn: usize) {
        assert_eq!(c % bc, 0, "bc must divide C");
        assert_eq!(n % bn, 0, "bn must divide N");
        self.data.resize_scratch(c * n);
        self.c = c;
        self.n = n;
        self.bc = bc;
        self.bn = bn;
    }

    /// Resets every element to `0.0`.
    pub fn fill_zero(&mut self) {
        self.data.fill_zero();
    }

    /// Allocated capacity in bytes (for scratch accounting).
    #[inline]
    pub fn capacity_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<f32>()
    }

    /// Unpacks back to a row-major `C×N` matrix.
    pub fn unpack(&self) -> Matrix {
        let mut m = Matrix::zeros(self.c, self.n);
        self.unpack_into(&mut m);
        m
    }

    /// Unpacks into an existing `C×N` matrix (no allocation).
    pub fn unpack_into(&self, out: &mut Matrix) {
        assert_eq!((self.c, self.n), out.shape(), "unpack_into shape mismatch");
        for cc in 0..self.c {
            for nn in 0..self.n {
                out[(cc, nn)] = self.data[self.index_of(cc, nn)];
            }
        }
    }

    /// Flat offset of logical element `X[c][n]`.
    #[inline]
    pub fn index_of(&self, c: usize, n: usize) -> usize {
        let (ibc, rc) = (c / self.bc, c % self.bc);
        let (ibn, rn) = (n / self.bn, n % self.bn);
        ((ibc * self.nb() + ibn) * self.bn + rn) * self.bc + rc
    }

    /// Borrow of the `(ibc, ibn)` panel: `bn·bc` floats, `[bn][bc]` row-major.
    #[inline]
    pub fn block(&self, ibc: usize, ibn: usize) -> &[f32] {
        let start = (ibc * self.nb() + ibn) * self.bn * self.bc;
        &self.data[start..start + self.bn * self.bc]
    }

    /// Mutable borrow of the `(ibc, ibn)` panel.
    #[inline]
    pub fn block_mut(&mut self, ibc: usize, ibn: usize) -> &mut [f32] {
        let start = (ibc * self.nb() + ibn) * self.bn * self.bc;
        &mut self.data[start..start + self.bn * self.bc]
    }

    /// Raw pointer to the `(ibc, ibn)` panel — used by the multithreaded
    /// kernels that partition panels across a thread team.
    #[inline]
    pub fn block_ptr(&self, ibc: usize, ibn: usize) -> *const f32 {
        self.block(ibc, ibn).as_ptr()
    }

    /// Full backing storage (block-major order).
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable full backing storage (block-major order).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divisor_helper() {
        assert_eq!(largest_divisor_at_most(1024, 64), 64);
        assert_eq!(largest_divisor_at_most(100, 64), 50);
        assert_eq!(largest_divisor_at_most(7, 4), 1);
        assert_eq!(largest_divisor_at_most(6, 6), 6);
    }

    #[test]
    fn blocking_for_shape_divides() {
        let b = Blocking::for_shape(1008, 1024, 4096);
        assert_eq!(1008 % b.bn, 0);
        assert_eq!(1024 % b.bc, 0);
        assert_eq!(4096 % b.bk, 0);
        assert!(b.bn <= 32 && b.bc <= 64 && b.bk <= 64);
    }

    #[test]
    fn weights_pack_unpack_round_trip() {
        let w = Matrix::from_fn(8, 12, |r, c| (r * 100 + c) as f32);
        let blk = Blocking {
            bn: 2,
            bc: 4,
            bk: 4,
        };
        let bw = BlockedWeights::pack(&w, blk);
        assert_eq!(bw.kb(), 2);
        assert_eq!(bw.cb(), 3);
        assert_eq!(bw.unpack().as_slice(), w.as_slice());
    }

    #[test]
    fn weights_block_contents() {
        let w = Matrix::from_fn(4, 4, |r, c| (r * 10 + c) as f32);
        let blk = Blocking {
            bn: 1,
            bc: 2,
            bk: 2,
        };
        let bw = BlockedWeights::pack(&w, blk);
        // Block (ibk=1, ibc=0) covers k in {2,3}, c in {0,1}; layout [bc][bk].
        let b = bw.block(1, 0);
        assert_eq!(b, &[20.0, 30.0, 21.0, 31.0]);
    }

    #[test]
    fn activations_pack_unpack_round_trip() {
        let x = Matrix::from_fn(6, 8, |r, c| (r * 1000 + c) as f32);
        let ba = BlockedActivations::pack(&x, 3, 4);
        assert_eq!(ba.cb(), 2);
        assert_eq!(ba.nb(), 2);
        assert_eq!(ba.unpack().as_slice(), x.as_slice());
    }

    #[test]
    fn activations_block_contents() {
        let x = Matrix::from_fn(4, 4, |r, c| (r * 10 + c) as f32);
        let ba = BlockedActivations::pack(&x, 2, 2);
        // Block (ibc=0, ibn=1) covers c in {0,1}, n in {2,3}; layout [bn][bc].
        let b = ba.block(0, 1);
        assert_eq!(b, &[2.0, 12.0, 3.0, 13.0]);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn weights_reject_non_dividing_blocking() {
        let _ = BlockedWeights::zeros(
            10,
            10,
            Blocking {
                bn: 1,
                bc: 3,
                bk: 2,
            },
        );
    }

    #[test]
    fn pack_into_reuses_capacity_and_matches_pack() {
        let blk = Blocking {
            bn: 2,
            bc: 4,
            bk: 4,
        };
        let big = Matrix::from_fn(8, 12, |r, c| (r * 100 + c) as f32);
        let small = Matrix::from_fn(4, 8, |r, c| (r * 7 + c) as f32);
        let mut bw = BlockedWeights::pack(&big, blk);
        let p = bw.as_slice().as_ptr();
        bw.pack_into(&small, blk);
        assert_eq!(bw.as_slice().as_ptr(), p, "shrinking repack must reuse");
        assert_eq!(
            bw.as_slice(),
            BlockedWeights::pack(&small, blk).as_slice(),
            "in-place pack must match from-scratch pack bitwise"
        );
        let mut out = Matrix::zeros(4, 8);
        bw.unpack_into(&mut out);
        assert_eq!(out.as_slice(), small.as_slice());
    }

    #[test]
    fn activations_pack_into_matches_pack() {
        let big = Matrix::from_fn(6, 8, |r, c| (r * 31 + c) as f32);
        let small = Matrix::from_fn(3, 4, |r, c| (r + c * 5) as f32);
        let mut ba = BlockedActivations::pack(&big, 3, 4);
        let p = ba.as_slice().as_ptr();
        ba.pack_into(&small, 3, 2);
        assert_eq!(ba.as_slice().as_ptr(), p, "shrinking repack must reuse");
        assert_eq!(
            ba.as_slice(),
            BlockedActivations::pack(&small, 3, 2).as_slice()
        );
        let mut out = Matrix::zeros(3, 4);
        ba.unpack_into(&mut out);
        assert_eq!(out.as_slice(), small.as_slice());
    }

    #[test]
    fn add_scaled_flat_matches_flat_sgd_bitwise() {
        let blk = Blocking {
            bn: 2,
            bc: 4,
            bk: 4,
        };
        let w = Matrix::from_fn(8, 12, |r, c| (r as f32 + 0.37) * 1.1 - c as f32 * 0.013);
        let g = Matrix::from_fn(8, 12, |r, c| (c as f32 - 3.7) * 0.31 + r as f32 * 0.07);
        let alpha = -0.05_f32;
        let mut bw = BlockedWeights::pack(&w, blk);
        bw.add_scaled_flat(&g, alpha);
        // Flat reference: w += alpha * g, separate mul-then-add per element.
        let mut flat = w.clone();
        for (wv, gv) in flat.as_mut_slice().iter_mut().zip(g.as_slice()) {
            let p = alpha * gv;
            *wv += p;
        }
        let got: Vec<u32> = bw.unpack().as_slice().iter().map(|x| x.to_bits()).collect();
        let want: Vec<u32> = flat.as_slice().iter().map(|x| x.to_bits()).collect();
        assert_eq!(got, want, "blocked SGD must be bitwise equal to flat SGD");
    }

    #[test]
    fn index_of_consistent_with_block_slices() {
        let blk = Blocking {
            bn: 2,
            bc: 4,
            bk: 8,
        };
        let bw = BlockedWeights::zeros(16, 8, blk);
        // element (k=9, c=5) lives in block (ibk=1, ibc=1) at [rc=1][rk=1]
        let flat = bw.index_of(9, 5);
        let block_start = (bw.cb() + 1) * blk.bc * blk.bk;
        assert_eq!(flat, block_start + blk.bk + 1);
    }
}
