//! Blocked 4-D tensor layouts of Algorithm 5 in the paper.
//!
//! A fully-connected layer computes `Y = W · X` with `W ∈ R^{K×C}`,
//! `X ∈ R^{C×N}`, `Y ∈ R^{K×N}`. Instead of flat row-major 2-D tensors, the
//! paper blocks every dimension:
//!
//! * weights: `W[Kb][Cb][bc][bk]` with `K = Kb·bk`, `C = Cb·bc`
//! * activations (and outputs): `X[Cb][Nb][bn][bc]`, `Y[Kb][Nb][bn][bk]`
//!
//! The innermost `[bn][bc]` / `[bc][bk]` panels are the operands of the
//! batch-reduce GEMM microkernel; blocking the leading dimensions avoids the
//! large power-of-two strides that cause TLB misses and cache-conflict
//! misses. Note the activation layout is the `[Cb][Nb][bn][bc]` variant the
//! paper chose (instead of `[Nb][Cb][bn][bc]` of prior work) because it makes
//! the backward-by-weights pass symmetric with the forward pass.

use crate::aligned::AlignedVec;
use crate::matrix::Matrix;

/// Blocking factors for one fully-connected layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Blocking {
    /// Minibatch block size (`bn`).
    pub bn: usize,
    /// Input-feature block size (`bc`).
    pub bc: usize,
    /// Output-feature block size (`bk`).
    pub bk: usize,
}

impl Blocking {
    /// The default blocking used by the optimized MLP kernels: panels sized
    /// so that a `bn×bk` accumulator fits comfortably in registers/L1 and
    /// `bk` is a multiple of the 16-lane AVX-512 vector width.
    pub const DEFAULT: Blocking = Blocking {
        bn: 32,
        bc: 64,
        bk: 64,
    };

    /// Chooses a blocking that divides the given problem exactly, starting
    /// from [`Blocking::DEFAULT`] and shrinking each factor to the largest
    /// divisor of the corresponding dimension.
    pub fn for_shape(n: usize, c: usize, k: usize) -> Blocking {
        Blocking {
            bn: largest_divisor_at_most(n, Blocking::DEFAULT.bn),
            bc: largest_divisor_at_most(c, Blocking::DEFAULT.bc),
            bk: largest_divisor_at_most(k, Blocking::DEFAULT.bk),
        }
    }
}

/// Largest divisor of `n` that is `<= cap` (always >= 1 for n >= 1).
pub fn largest_divisor_at_most(n: usize, cap: usize) -> usize {
    assert!(n >= 1, "dimension must be positive");
    let mut best = 1;
    let mut d = 1;
    while d <= cap && d <= n {
        if n.is_multiple_of(d) {
            best = d;
        }
        d += 1;
    }
    best
}

/// Weight tensor in `[Kb][Cb][bc][bk]` layout.
pub struct BlockedWeights {
    data: AlignedVec,
    /// Output features.
    pub k: usize,
    /// Input features.
    pub c: usize,
    /// Blocking factors (`bn` unused here).
    pub blk: Blocking,
}

impl BlockedWeights {
    /// Number of K blocks.
    #[inline]
    pub fn kb(&self) -> usize {
        self.k / self.blk.bk
    }

    /// Number of C blocks.
    #[inline]
    pub fn cb(&self) -> usize {
        self.c / self.blk.bc
    }

    /// Zero-initialized blocked weight tensor.
    ///
    /// # Panics
    /// Panics unless `bk | k` and `bc | c`.
    pub fn zeros(k: usize, c: usize, blk: Blocking) -> Self {
        assert_eq!(k % blk.bk, 0, "bk must divide K");
        assert_eq!(c % blk.bc, 0, "bc must divide C");
        Self {
            data: AlignedVec::zeroed(k * c),
            k,
            c,
            blk,
        }
    }

    /// Packs a row-major `K×C` matrix into blocked layout.
    pub fn pack(w: &Matrix, blk: Blocking) -> Self {
        let (k, c) = w.shape();
        let mut out = Self::zeros(k, c, blk);
        for kk in 0..k {
            for cc in 0..c {
                let idx = out.index_of(kk, cc);
                out.data[idx] = w[(kk, cc)];
            }
        }
        out
    }

    /// Unpacks back to a row-major `K×C` matrix.
    pub fn unpack(&self) -> Matrix {
        let mut m = Matrix::zeros(self.k, self.c);
        for kk in 0..self.k {
            for cc in 0..self.c {
                m[(kk, cc)] = self.data[self.index_of(kk, cc)];
            }
        }
        m
    }

    /// Flat offset of logical element `W[k][c]`.
    ///
    /// Layout: `[Kb][Cb][bc][bk]` — within a block, `bc` is the slow axis and
    /// `bk` the contiguous one, so the microkernel's B-broadcast/A-vector
    /// FMA reads unit-stride along `bk`.
    #[inline]
    pub fn index_of(&self, k: usize, c: usize) -> usize {
        let Blocking { bc, bk, .. } = self.blk;
        let (ibk, rk) = (k / bk, k % bk);
        let (ibc, rc) = (c / bc, c % bc);
        ((ibk * self.cb() + ibc) * bc + rc) * bk + rk
    }

    /// Borrow of the `(ibk, ibc)` panel: `bc·bk` floats, `[bc][bk]` row-major.
    #[inline]
    pub fn block(&self, ibk: usize, ibc: usize) -> &[f32] {
        let Blocking { bc, bk, .. } = self.blk;
        let start = (ibk * self.cb() + ibc) * bc * bk;
        &self.data[start..start + bc * bk]
    }

    /// Mutable borrow of the `(ibk, ibc)` panel.
    #[inline]
    pub fn block_mut(&mut self, ibk: usize, ibc: usize) -> &mut [f32] {
        let Blocking { bc, bk, .. } = self.blk;
        let start = (ibk * self.cb() + ibc) * bc * bk;
        &mut self.data[start..start + bc * bk]
    }

    /// Full backing storage (block-major order).
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable full backing storage (block-major order).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }
}

/// Activation tensor in `[Cb][Nb][bn][bc]` layout (logical shape `C×N`).
///
/// Also used for outputs, which are `[Kb][Nb][bn][bk]`: identical structure
/// with `(k, bk)` in place of `(c, bc)`.
pub struct BlockedActivations {
    data: AlignedVec,
    /// Feature dimension (C for inputs, K for outputs).
    pub c: usize,
    /// Minibatch dimension.
    pub n: usize,
    /// Feature block size (`bc` for inputs, `bk` for outputs).
    pub bc: usize,
    /// Minibatch block size.
    pub bn: usize,
}

impl BlockedActivations {
    /// Number of feature blocks.
    #[inline]
    pub fn cb(&self) -> usize {
        self.c / self.bc
    }

    /// Number of minibatch blocks.
    #[inline]
    pub fn nb(&self) -> usize {
        self.n / self.bn
    }

    /// Zero-initialized blocked activation tensor.
    ///
    /// # Panics
    /// Panics unless `bc | c` and `bn | n`.
    pub fn zeros(c: usize, n: usize, bc: usize, bn: usize) -> Self {
        assert_eq!(c % bc, 0, "bc must divide C");
        assert_eq!(n % bn, 0, "bn must divide N");
        Self {
            data: AlignedVec::zeroed(c * n),
            c,
            n,
            bc,
            bn,
        }
    }

    /// Packs a row-major `C×N` matrix into blocked layout.
    pub fn pack(x: &Matrix, bc: usize, bn: usize) -> Self {
        let (c, n) = x.shape();
        let mut out = Self::zeros(c, n, bc, bn);
        for cc in 0..c {
            for nn in 0..n {
                let idx = out.index_of(cc, nn);
                out.data[idx] = x[(cc, nn)];
            }
        }
        out
    }

    /// Unpacks back to a row-major `C×N` matrix.
    pub fn unpack(&self) -> Matrix {
        let mut m = Matrix::zeros(self.c, self.n);
        for cc in 0..self.c {
            for nn in 0..self.n {
                m[(cc, nn)] = self.data[self.index_of(cc, nn)];
            }
        }
        m
    }

    /// Flat offset of logical element `X[c][n]`.
    #[inline]
    pub fn index_of(&self, c: usize, n: usize) -> usize {
        let (ibc, rc) = (c / self.bc, c % self.bc);
        let (ibn, rn) = (n / self.bn, n % self.bn);
        ((ibc * self.nb() + ibn) * self.bn + rn) * self.bc + rc
    }

    /// Borrow of the `(ibc, ibn)` panel: `bn·bc` floats, `[bn][bc]` row-major.
    #[inline]
    pub fn block(&self, ibc: usize, ibn: usize) -> &[f32] {
        let start = (ibc * self.nb() + ibn) * self.bn * self.bc;
        &self.data[start..start + self.bn * self.bc]
    }

    /// Mutable borrow of the `(ibc, ibn)` panel.
    #[inline]
    pub fn block_mut(&mut self, ibc: usize, ibn: usize) -> &mut [f32] {
        let start = (ibc * self.nb() + ibn) * self.bn * self.bc;
        &mut self.data[start..start + self.bn * self.bc]
    }

    /// Raw pointer to the `(ibc, ibn)` panel — used by the multithreaded
    /// kernels that partition panels across a thread team.
    #[inline]
    pub fn block_ptr(&self, ibc: usize, ibn: usize) -> *const f32 {
        self.block(ibc, ibn).as_ptr()
    }

    /// Full backing storage (block-major order).
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable full backing storage (block-major order).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divisor_helper() {
        assert_eq!(largest_divisor_at_most(1024, 64), 64);
        assert_eq!(largest_divisor_at_most(100, 64), 50);
        assert_eq!(largest_divisor_at_most(7, 4), 1);
        assert_eq!(largest_divisor_at_most(6, 6), 6);
    }

    #[test]
    fn blocking_for_shape_divides() {
        let b = Blocking::for_shape(1008, 1024, 4096);
        assert_eq!(1008 % b.bn, 0);
        assert_eq!(1024 % b.bc, 0);
        assert_eq!(4096 % b.bk, 0);
        assert!(b.bn <= 32 && b.bc <= 64 && b.bk <= 64);
    }

    #[test]
    fn weights_pack_unpack_round_trip() {
        let w = Matrix::from_fn(8, 12, |r, c| (r * 100 + c) as f32);
        let blk = Blocking {
            bn: 2,
            bc: 4,
            bk: 4,
        };
        let bw = BlockedWeights::pack(&w, blk);
        assert_eq!(bw.kb(), 2);
        assert_eq!(bw.cb(), 3);
        assert_eq!(bw.unpack().as_slice(), w.as_slice());
    }

    #[test]
    fn weights_block_contents() {
        let w = Matrix::from_fn(4, 4, |r, c| (r * 10 + c) as f32);
        let blk = Blocking {
            bn: 1,
            bc: 2,
            bk: 2,
        };
        let bw = BlockedWeights::pack(&w, blk);
        // Block (ibk=1, ibc=0) covers k in {2,3}, c in {0,1}; layout [bc][bk].
        let b = bw.block(1, 0);
        assert_eq!(b, &[20.0, 30.0, 21.0, 31.0]);
    }

    #[test]
    fn activations_pack_unpack_round_trip() {
        let x = Matrix::from_fn(6, 8, |r, c| (r * 1000 + c) as f32);
        let ba = BlockedActivations::pack(&x, 3, 4);
        assert_eq!(ba.cb(), 2);
        assert_eq!(ba.nb(), 2);
        assert_eq!(ba.unpack().as_slice(), x.as_slice());
    }

    #[test]
    fn activations_block_contents() {
        let x = Matrix::from_fn(4, 4, |r, c| (r * 10 + c) as f32);
        let ba = BlockedActivations::pack(&x, 2, 2);
        // Block (ibc=0, ibn=1) covers c in {0,1}, n in {2,3}; layout [bn][bc].
        let b = ba.block(0, 1);
        assert_eq!(b, &[2.0, 12.0, 3.0, 13.0]);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn weights_reject_non_dividing_blocking() {
        let _ = BlockedWeights::zeros(
            10,
            10,
            Blocking {
                bn: 1,
                bc: 3,
                bk: 2,
            },
        );
    }

    #[test]
    fn index_of_consistent_with_block_slices() {
        let blk = Blocking {
            bn: 2,
            bc: 4,
            bk: 8,
        };
        let bw = BlockedWeights::zeros(16, 8, blk);
        // element (k=9, c=5) lives in block (ibk=1, ibc=1) at [rc=1][rk=1]
        let flat = bw.index_of(9, 5);
        let block_start = (bw.cb() + 1) * blk.bc * blk.bk;
        assert_eq!(flat, block_start + blk.bk + 1);
    }
}
