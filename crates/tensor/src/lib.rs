//! # dlrm-tensor — dense tensor substrate
//!
//! This crate provides the dense-tensor building blocks used by every other
//! crate in the workspace:
//!
//! * [`AlignedVec`] — a cache-line-aligned `f32` buffer. All hot tensors in
//!   the reproduction live in 64-byte-aligned storage so that SIMD kernels
//!   can use aligned loads and so that a tensor row never straddles a cache
//!   line unnecessarily (the paper's embedding kernels read *full rows*, i.e.
//!   consecutive cache lines, from each table).
//! * [`Matrix`] — a row-major 2-D `f32` matrix with the small set of
//!   operations the DLRM operators need.
//! * [`blocked`] — the 4-D blocked tensor layouts of Algorithm 5 in the
//!   paper: weights as `[Kb][Cb][bc][bk]` and activations as
//!   `[Cb][Nb][bn][bc]`. These layouts expose locality for the batch-reduce
//!   GEMM microkernel and avoid large power-of-two strides.
//! * [`init`] — reproducible random initializers (Xavier / uniform / normal).
//! * [`compare`] — tolerant numeric comparison helpers used pervasively by
//!   the test suites that check optimized kernels against naive references.

pub mod aligned;
pub mod blocked;
pub mod compare;
pub mod init;
pub mod matrix;
pub mod util;

pub use aligned::AlignedVec;
pub use blocked::{BlockedActivations, BlockedWeights, Blocking};
pub use compare::{assert_allclose, max_abs_diff, max_rel_diff};
pub use matrix::Matrix;
