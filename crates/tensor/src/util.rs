//! Small shared utilities: byte formatting and work partitioning.

/// Formats a byte count with binary units ("1.5 GiB").
pub fn format_bytes(bytes: u64) -> String {
    const UNITS: [&str; 6] = ["B", "KiB", "MiB", "GiB", "TiB", "PiB"];
    let mut v = bytes as f64;
    let mut u = 0;
    while v >= 1024.0 && u + 1 < UNITS.len() {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{bytes} B")
    } else {
        format!("{v:.2} {}", UNITS[u])
    }
}

/// Splits `n` work items among `parts` workers the way the paper's
/// race-free embedding update does: worker `i` owns the half-open range
/// `[n·i/parts, n·(i+1)/parts)`. Every item is owned by exactly one worker
/// and ranges differ in size by at most one.
#[inline]
pub fn partition_range(n: usize, parts: usize, i: usize) -> std::ops::Range<usize> {
    debug_assert!(i < parts);
    (n * i / parts)..(n * (i + 1) / parts)
}

/// Splits `0..n` into chunks of at most `chunk` items.
pub fn chunks(n: usize, chunk: usize) -> impl Iterator<Item = std::ops::Range<usize>> {
    assert!(chunk > 0);
    (0..n.div_ceil(chunk)).map(move |i| (i * chunk)..((i + 1) * chunk).min(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_formatting() {
        assert_eq!(format_bytes(512), "512 B");
        assert_eq!(format_bytes(2048), "2.00 KiB");
        assert_eq!(format_bytes(98 * 1024 * 1024 * 1024), "98.00 GiB");
    }

    #[test]
    fn partition_covers_exactly_once() {
        for n in [0usize, 1, 7, 100, 101] {
            for parts in [1usize, 2, 3, 7, 28] {
                let mut seen = vec![0u32; n];
                for i in 0..parts {
                    for j in partition_range(n, parts, i) {
                        seen[j] += 1;
                    }
                }
                assert!(seen.iter().all(|&c| c == 1), "n={n} parts={parts}");
            }
        }
    }

    #[test]
    fn partition_is_balanced() {
        for i in 0..7 {
            let r = partition_range(100, 7, i);
            let len = r.end - r.start;
            assert!((14..=15).contains(&len));
        }
    }

    #[test]
    fn chunks_cover_range() {
        let collected: Vec<_> = chunks(10, 3).collect();
        assert_eq!(collected, vec![0..3, 3..6, 6..9, 9..10]);
        assert_eq!(chunks(0, 4).count(), 0);
    }
}
