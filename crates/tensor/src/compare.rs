//! Tolerant numeric comparison used by kernel-vs-reference tests.

/// Maximum absolute elementwise difference between two slices.
///
/// # Panics
/// Panics if lengths differ.
pub fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "max_abs_diff length mismatch");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - y).abs())
        .fold(0.0, f32::max)
}

/// Maximum elementwise relative difference `|x−y| / max(|x|, |y|, 1)`.
///
/// The `1` floor means values near zero are compared absolutely, which is the
/// right behaviour for gradients that legitimately cancel to ~0.
pub fn max_rel_diff(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "max_rel_diff length mismatch");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - y).abs() / x.abs().max(y.abs()).max(1.0))
        .fold(0.0, f32::max)
}

/// Asserts elementwise closeness with a relative tolerance (absolute near 0).
///
/// # Panics
/// Panics with the offending index, values and observed error on mismatch.
pub fn assert_allclose(a: &[f32], b: &[f32], rtol: f32, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
        let denom = x.abs().max(y.abs()).max(1.0);
        let err = (x - y).abs() / denom;
        assert!(
            err <= rtol && x.is_finite() == y.is_finite(),
            "{what}: mismatch at [{i}]: {x} vs {y} (rel err {err:.3e} > {rtol:.1e})"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abs_diff_basics() {
        assert_eq!(max_abs_diff(&[1.0, 2.0], &[1.5, 2.0]), 0.5);
        assert_eq!(max_abs_diff(&[], &[]), 0.0);
    }

    #[test]
    fn rel_diff_uses_floor_near_zero() {
        // 1e-6 vs 0: relative to max(|a|,|b|,1)=1 -> 1e-6, not 1.0.
        assert!(max_rel_diff(&[1e-6], &[0.0]) < 1e-5);
        // 100 vs 101 -> ~1%.
        let d = max_rel_diff(&[100.0], &[101.0]);
        assert!((d - 1.0 / 101.0).abs() < 1e-6);
    }

    #[test]
    fn allclose_accepts_within_tolerance() {
        assert_allclose(&[1.0, 1e-7], &[1.0000001, 0.0], 1e-5, "ok");
    }

    #[test]
    #[should_panic(expected = "mismatch at [1]")]
    fn allclose_reports_index() {
        assert_allclose(&[1.0, 2.0], &[1.0, 3.0], 1e-5, "boom");
    }

    #[test]
    #[should_panic]
    fn allclose_rejects_nan_vs_finite() {
        assert_allclose(&[f32::NAN], &[0.0], 1.0, "nan");
    }
}
