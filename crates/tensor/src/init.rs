//! Reproducible random initializers.
//!
//! All randomness in the workspace flows through explicitly seeded
//! [`rand::rngs::StdRng`] instances so that every experiment (and the
//! distributed-equals-single-process tests) is bit-reproducible.

use crate::matrix::Matrix;
use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Returns a deterministically seeded RNG; `stream` lets callers derive
/// independent substreams from one experiment seed.
pub fn seeded_rng(seed: u64, stream: u64) -> StdRng {
    StdRng::seed_from_u64(seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Xavier/Glorot uniform initialization for a `K×C` weight matrix:
/// `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    let a = (6.0 / (rows + cols) as f64).sqrt() as f32;
    uniform(rows, cols, -a, a, rng)
}

/// Uniform `U(lo, hi)` matrix.
pub fn uniform(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut StdRng) -> Matrix {
    let dist = Uniform::new(lo, hi);
    Matrix::from_fn(rows, cols, |_, _| dist.sample(rng))
}

/// Standard-normal matrix scaled by `std`.
pub fn normal(rows: usize, cols: usize, std: f32, rng: &mut StdRng) -> Matrix {
    // Box-Muller: avoids pulling in a distributions crate beyond `rand`.
    Matrix::from_fn(rows, cols, |_, _| {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    })
}

/// Embedding-table initialization used by the DLRM reference code:
/// `U(-1/sqrt(M), 1/sqrt(M))` for a table with `M` rows.
pub fn embedding_table(m: usize, e: usize, rng: &mut StdRng) -> Matrix {
    let a = (1.0 / (m as f64).sqrt()) as f32;
    uniform(m, e, -a, a, rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_reproducible() {
        let a = uniform(4, 4, 0.0, 1.0, &mut seeded_rng(7, 0));
        let b = uniform(4, 4, 0.0, 1.0, &mut seeded_rng(7, 0));
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn streams_are_independent() {
        let a = uniform(4, 4, 0.0, 1.0, &mut seeded_rng(7, 0));
        let b = uniform(4, 4, 0.0, 1.0, &mut seeded_rng(7, 1));
        assert_ne!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn xavier_bound_holds() {
        let m = xavier_uniform(64, 64, &mut seeded_rng(1, 0));
        let a = (6.0f64 / 128.0).sqrt() as f32;
        assert!(m.as_slice().iter().all(|&x| x > -a && x < a));
    }

    #[test]
    fn normal_moments_are_plausible() {
        let m = normal(64, 64, 2.0, &mut seeded_rng(3, 0));
        let n = m.len() as f64;
        let mean = m.sum() / n;
        let var = m
            .as_slice()
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        assert!(mean.abs() < 0.15, "mean {mean}");
        assert!((var - 4.0).abs() < 0.6, "var {var}");
    }

    #[test]
    fn embedding_table_bound() {
        let t = embedding_table(100, 16, &mut seeded_rng(5, 0));
        assert!(t.as_slice().iter().all(|&x| x.abs() <= 0.1));
    }
}
