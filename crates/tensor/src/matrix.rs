//! Row-major 2-D matrix of `f32` backed by [`AlignedVec`].

use crate::aligned::AlignedVec;

/// A dense row-major matrix with 64-byte-aligned storage.
///
/// The convention throughout the workspace follows the paper's notation for
/// fully-connected layers: `Y = W · X` with `W ∈ R^{K×C}`, `X ∈ R^{C×N}`,
/// `Y ∈ R^{K×N}` where `N` is the minibatch. Embedding tables are
/// `W ∈ R^{M×E}` (M rows of length E) and are also stored as a `Matrix`.
#[derive(Clone)]
pub struct Matrix {
    data: AlignedVec,
    rows: usize,
    cols: usize,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            data: AlignedVec::zeroed(rows * cols),
            rows,
            cols,
        }
    }

    /// Creates a matrix from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Creates a matrix wrapping a copy of row-major `data`.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_slice(rows: usize, cols: usize, data: &[f32]) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_slice: data length {} != {rows}x{cols}",
            data.len()
        );
        Self {
            data: AlignedVec::from_slice(data),
            rows,
            cols,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// Allocated capacity in elements (`>= len`).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Changes the row count, keeping `cols`, with *scratch* semantics: the
    /// backing storage is reused when large enough and replaced (without
    /// copying) when not — see [`AlignedVec::resize_scratch`]. Used by
    /// iteration-persistent buffers like the embedding layer's `dW[NS][E]`,
    /// whose leading dimension tracks the batch's lookup count. After a
    /// growing call the contents are unspecified; overwrite before reading.
    pub fn resize_rows(&mut self, rows: usize) {
        self.data.resize_scratch(rows * self.cols);
        self.rows = rows;
    }

    /// True when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The full backing storage in row-major order.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the full backing storage in row-major order.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Borrow of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Two disjoint mutable row borrows (`a != b`).
    pub fn rows_mut2(&mut self, a: usize, b: usize) -> (&mut [f32], &mut [f32]) {
        assert_ne!(a, b, "rows_mut2 requires distinct rows");
        let cols = self.cols;
        let (lo, hi, swapped) = if a < b { (a, b, false) } else { (b, a, true) };
        let (head, tail) = self.data.split_at_mut(hi * cols);
        let first = &mut head[lo * cols..(lo + 1) * cols];
        let second = &mut tail[..cols];
        if swapped {
            (second, first)
        } else {
            (first, second)
        }
    }

    /// Sets every element to zero.
    pub fn fill_zero(&mut self) {
        self.data.fill_zero();
    }

    /// Returns the transposed matrix (new allocation).
    pub fn transposed(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            let src = self.row(r);
            for c in 0..self.cols {
                // Column-strided store: fine for the cold paths this is used on.
                t[(c, r)] = src[c];
            }
        }
        t
    }

    /// `self += alpha * other`, elementwise.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (y, &x) in self.data.iter_mut().zip(other.data.iter()) {
            *y += alpha * x;
        }
    }

    /// Scales every element by `alpha`.
    pub fn scale(&mut self, alpha: f32) {
        for x in self.data.iter_mut() {
            *x *= alpha;
        }
    }

    /// Sum of all elements (f64 accumulation for stability).
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&x| x as f64).sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data
            .iter()
            .map(|&x| (x as f64) * (x as f64))
            .sum::<f64>()
            .sqrt()
    }

    /// Memory footprint of the element storage in bytes.
    pub fn nbytes(&self) -> usize {
        self.len() * std::mem::size_of::<f32>()
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f32;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl std::fmt::Debug for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_content() {
        let m = Matrix::zeros(3, 5);
        assert_eq!(m.shape(), (3, 5));
        assert_eq!(m.len(), 15);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_fn_indexing() {
        let m = Matrix::from_fn(4, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m[(0, 0)], 0.0);
        assert_eq!(m[(2, 1)], 21.0);
        assert_eq!(m.row(3), &[30.0, 31.0, 32.0]);
    }

    #[test]
    fn from_slice_layout_is_row_major() {
        let m = Matrix::from_slice(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    #[should_panic(expected = "from_slice")]
    fn from_slice_rejects_bad_len() {
        let _ = Matrix::from_slice(2, 2, &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let m = Matrix::from_fn(5, 7, |r, c| (r * 100 + c) as f32);
        let t = m.transposed();
        assert_eq!(t.shape(), (7, 5));
        for r in 0..5 {
            for c in 0..7 {
                assert_eq!(m[(r, c)], t[(c, r)]);
            }
        }
        let back = t.transposed();
        assert_eq!(back.as_slice(), m.as_slice());
    }

    #[test]
    fn rows_mut2_disjoint_both_orders() {
        let mut m = Matrix::from_fn(4, 2, |r, _| r as f32);
        {
            let (a, b) = m.rows_mut2(1, 3);
            a[0] = -1.0;
            b[0] = -3.0;
        }
        {
            let (b, a) = m.rows_mut2(3, 1);
            assert_eq!(b[0], -3.0);
            assert_eq!(a[0], -1.0);
        }
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn rows_mut2_rejects_same_row() {
        let mut m = Matrix::zeros(2, 2);
        let _ = m.rows_mut2(1, 1);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Matrix::from_slice(1, 3, &[1.0, 2.0, 3.0]);
        let b = Matrix::from_slice(1, 3, &[10.0, 20.0, 30.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[6.0, 12.0, 18.0]);
        a.scale(2.0);
        assert_eq!(a.as_slice(), &[12.0, 24.0, 36.0]);
    }

    #[test]
    fn reductions() {
        let m = Matrix::from_slice(2, 2, &[3.0, 4.0, 0.0, 0.0]);
        assert_eq!(m.sum(), 7.0);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }
}
