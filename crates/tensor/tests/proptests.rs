//! Property-based tests for the tensor substrate.

use dlrm_tensor::blocked::{largest_divisor_at_most, BlockedActivations, BlockedWeights, Blocking};
use dlrm_tensor::util::partition_range;
use dlrm_tensor::Matrix;
use proptest::prelude::*;

/// A (dimension, block) pair where block divides dimension.
fn dim_and_block(max_blocks: usize, max_block: usize) -> impl Strategy<Value = (usize, usize)> {
    (1..=max_block, 1..=max_blocks).prop_map(|(b, nb)| (b * nb, b))
}

proptest! {
    #[test]
    fn blocked_weights_round_trip(
        ((k, bk), (c, bc)) in (dim_and_block(4, 8), dim_and_block(4, 8)),
        seed in any::<u64>(),
    ) {
        let mut rng = dlrm_tensor::init::seeded_rng(seed, 0);
        let w = dlrm_tensor::init::uniform(k, c, -1.0, 1.0, &mut rng);
        let blk = Blocking { bn: 1, bc, bk };
        let packed = BlockedWeights::pack(&w, blk);
        let unpacked = packed.unpack();
        prop_assert_eq!(unpacked.as_slice(), w.as_slice());
    }

    #[test]
    fn blocked_activations_round_trip(
        ((c, bc), (n, bn)) in (dim_and_block(4, 8), dim_and_block(4, 8)),
        seed in any::<u64>(),
    ) {
        let mut rng = dlrm_tensor::init::seeded_rng(seed, 1);
        let x = dlrm_tensor::init::uniform(c, n, -1.0, 1.0, &mut rng);
        let packed = BlockedActivations::pack(&x, bc, bn);
        let unpacked = packed.unpack();
        prop_assert_eq!(unpacked.as_slice(), x.as_slice());
    }

    #[test]
    fn blocked_index_matches_pack(
        ((k, bk), (c, bc)) in (dim_and_block(3, 6), dim_and_block(3, 6)),
    ) {
        let w = Matrix::from_fn(k, c, |r, cc| (r * c + cc) as f32);
        let packed = BlockedWeights::pack(&w, Blocking { bn: 1, bc, bk });
        for r in 0..k {
            for cc in 0..c {
                prop_assert_eq!(packed.as_slice()[packed.index_of(r, cc)], w[(r, cc)]);
            }
        }
    }

    #[test]
    fn transpose_involution(r in 1usize..12, c in 1usize..12, seed in any::<u64>()) {
        let mut rng = dlrm_tensor::init::seeded_rng(seed, 2);
        let m = dlrm_tensor::init::uniform(r, c, -10.0, 10.0, &mut rng);
        let tt = m.transposed().transposed();
        prop_assert_eq!(tt.as_slice(), m.as_slice());
    }

    #[test]
    fn partition_is_disjoint_cover(n in 0usize..500, parts in 1usize..33) {
        let mut count = vec![0u8; n];
        let mut prev_end = 0;
        for i in 0..parts {
            let r = partition_range(n, parts, i);
            prop_assert_eq!(r.start, prev_end, "ranges must be contiguous");
            prev_end = r.end;
            for j in r {
                count[j] += 1;
            }
        }
        prop_assert_eq!(prev_end, n);
        prop_assert!(count.iter().all(|&c| c == 1));
    }

    #[test]
    fn largest_divisor_properties(n in 1usize..2000, cap in 1usize..128) {
        let d = largest_divisor_at_most(n, cap);
        prop_assert!(d >= 1 && d <= cap.min(n));
        prop_assert_eq!(n % d, 0);
        // maximality: no larger divisor <= cap
        for bigger in (d + 1)..=cap.min(n) {
            prop_assert!(n % bigger != 0);
        }
    }

    #[test]
    fn axpy_matches_scalar_model(
        len in 1usize..64,
        alpha in -2.0f32..2.0,
        seed in any::<u64>(),
    ) {
        let mut rng = dlrm_tensor::init::seeded_rng(seed, 3);
        let a = dlrm_tensor::init::uniform(1, len, -1.0, 1.0, &mut rng);
        let b = dlrm_tensor::init::uniform(1, len, -1.0, 1.0, &mut rng);
        let mut y = a.clone();
        y.axpy(alpha, &b);
        for i in 0..len {
            prop_assert_eq!(y.as_slice()[i], a.as_slice()[i] + alpha * b.as_slice()[i]);
        }
    }
}
