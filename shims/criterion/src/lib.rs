//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the bench-definition API (`criterion_group!`, `criterion_main!`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Bencher::iter`,
//! `Throughput`, `BenchmarkId`, `black_box`) so the workspace's `harness =
//! false` bench targets compile and run unchanged, but replaces criterion's
//! statistical machinery with a short warmup + fixed measurement loop that
//! prints one line per benchmark. Good enough for relative comparisons in an
//! offline container; not a statistics engine.

use std::time::{Duration, Instant};

/// Opaque identity function that defeats constant-folding of its argument.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation used to derive a rate from the measured time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Two-part benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds `function/parameter`.
    pub fn new<F: std::fmt::Display, P: std::fmt::Display>(function: F, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{function}/{parameter}"),
        }
    }
}

/// Things accepted as a benchmark name by [`BenchmarkGroup::bench_function`].
pub trait IntoBenchmarkId {
    /// The full display name.
    fn into_name(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_name(self) -> String {
        self.name
    }
}

impl IntoBenchmarkId for &str {
    fn into_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_name(self) -> String {
        self
    }
}

/// Timing loop handle passed to the bench closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` for the configured number of iterations, recording
    /// total elapsed wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    /// Retained for API compatibility; scales the measurement loop length.
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the nominal sample count (scales this shim's iteration count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the throughput used to report a rate alongside the time.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Defines a benchmark within the group.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let name = id.into_name();
        self.run_one(&name, &mut f);
        self
    }

    /// Defines a benchmark parameterized by `input`.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        let name = id.into_name();
        self.run_one(&name, &mut |b: &mut Bencher| f(b, input));
        self
    }

    fn run_one(&mut self, name: &str, f: &mut dyn FnMut(&mut Bencher)) {
        // Warmup once, then measure a small fixed batch. Criterion proper
        // auto-tunes iteration counts; a fixed small count keeps offline
        // bench runs fast and predictable.
        let mut warm = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut warm);
        let iters = self.sample_size.min(20) as u64;
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = if iters > 0 {
            b.elapsed / iters as u32
        } else {
            Duration::ZERO
        };
        let rate = self.throughput.map(|t| match t {
            Throughput::Elements(n) => format!(
                " ({:.3} Melem/s)",
                n as f64 / per_iter.as_secs_f64().max(1e-12) / 1e6
            ),
            Throughput::Bytes(n) => format!(
                " ({:.3} MiB/s)",
                n as f64 / per_iter.as_secs_f64().max(1e-12) / (1024.0 * 1024.0)
            ),
        });
        println!(
            "bench {}/{}: {:>12.3?}/iter over {} iters{}",
            self.name,
            name,
            per_iter,
            iters,
            rate.unwrap_or_default()
        );
        self.criterion.benchmarks_run += 1;
    }

    /// Ends the group (report-flush point in criterion proper; no-op here).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 10,
        }
    }
}

/// Bundles bench functions under a group name, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut calls = 0usize;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10);
            g.throughput(Throughput::Elements(100));
            g.bench_function("plain", |b| b.iter(|| calls += 1));
            g.bench_with_input(BenchmarkId::new("with", 7), &3u32, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
            g.finish();
        }
        assert_eq!(c.benchmarks_run, 2);
        // Warmup (1) + measurement (10) iterations.
        assert_eq!(calls, 11);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).into_name(), "f/32");
    }
}
