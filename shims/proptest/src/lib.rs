//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro, range / tuple / `any` / `vec` / `select`
//! strategies, `prop_map` / `prop_filter` adapters, and the
//! `prop_assert*` macros. Cases are generated from a deterministic
//! per-test seed (derived from the test's module path and name), so every
//! failure reproduces by re-running the same test binary — there is no
//! shrinking and no persistence file.
//!
//! `prop_assert!` / `prop_assert_eq!` forward to `assert!` / `assert_eq!`;
//! a failing case additionally reports its case index and the generated
//! inputs.

pub mod test_runner {
    /// Per-test configuration (the `cases` knob only).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Outcome of one generated case (used by the macro internals).
    pub enum CaseResult {
        /// Case body ran to completion.
        Pass,
        /// Case was rejected by `prop_assume!`.
        Skip,
    }

    /// Deterministic case generator: xoshiro256** seeded from the test
    /// name and case index. No OS entropy, no wall clock.
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// RNG for case `case` of the test identified by `name`.
        pub fn for_case(name: &str, case: u32) -> Self {
            // FNV-1a over the test path, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            let mut sm = h ^ ((case as u64) << 32) ^ 0x9E37_79B9_7F4A_7C15;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform value in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            loop {
                let m = (self.next_u64() as u128).wrapping_mul(n as u128);
                if (m as u64) >= n.wrapping_neg() % n {
                    return (m >> 64) as u64;
                }
            }
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Rejects values failing `pred` (regenerating, bounded retries).
        fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason,
                pred,
            }
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.new_value(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter '{}' rejected 1000 consecutive values",
                self.reason
            );
        }
    }

    /// Strategies behind shared references generate like their referent.
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            (**self).new_value(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span + 1) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let v = self.start as f64
                        + rng.unit() * (self.end as f64 - self.start as f64);
                    if v >= self.end as f64 { self.start } else { v as $t }
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy!(
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4)
    );
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The canonical strategy for `T` (see [`any`]).
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    /// Strategy producing any value of `T` — including, for floats, the
    /// occasional NaN/infinity/subnormal from raw bit patterns.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            // Raw bit pattern: exercises the full float landscape
            // (subnormals, infinities, NaNs) like real proptest's any.
            f32::from_bits(rng.next_u64() as u32)
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            f64::from_bits(rng.next_u64())
        }
    }
}

/// Strategy combinators namespace (`prop::collection::vec`, …).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Acceptable size specifications for [`vec`].
        pub trait SizeRange {
            /// Samples a concrete length.
            fn pick(&self, rng: &mut TestRng) -> usize;
        }

        impl SizeRange for usize {
            fn pick(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl SizeRange for std::ops::Range<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                assert!(self.start < self.end, "empty vec size range");
                self.start + rng.below((self.end - self.start) as u64) as usize
            }
        }

        impl SizeRange for std::ops::RangeInclusive<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
            }
        }

        /// Strategy for `Vec<S::Value>` with length drawn from `size`.
        pub struct VecStrategy<S, R> {
            element: S,
            size: R,
        }

        /// `Vec` strategy: each element from `element`, length from `size`.
        pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
            VecStrategy { element, size }
        }

        impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
            type Value = Vec<S::Value>;
            fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.size.pick(rng);
                (0..n).map(|_| self.element.new_value(rng)).collect()
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy choosing uniformly from a fixed set.
        pub struct Select<T> {
            options: Vec<T>,
        }

        /// Uniform choice from `options` (must be non-empty).
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select needs at least one option");
            Select { options }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn new_value(&self, rng: &mut TestRng) -> T {
                self.options[rng.below(self.options.len() as u64) as usize].clone()
            }
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Each test runs `cases` deterministic cases; a failing case reports its
/// index and generated inputs, and re-running the test reproduces it
/// exactly.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            cfg = <$crate::test_runner::ProptestConfig as Default>::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        #[test]
        fn $name:ident ( $( $arg:pat in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __test_path = concat!(module_path!(), "::", stringify!($name));
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(__test_path, __case);
                let __vals = (
                    $( $crate::strategy::Strategy::new_value(&($strat), &mut __rng), )+
                );
                let __desc = format!("{:?}", __vals);
                let __outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                    || -> $crate::test_runner::CaseResult {
                        let ( $($arg,)+ ) = __vals;
                        $body
                        #[allow(unreachable_code)]
                        $crate::test_runner::CaseResult::Pass
                    },
                ));
                if let Err(payload) = __outcome {
                    eprintln!(
                        "proptest {__test_path}: case {__case}/{} failed with inputs {__desc}",
                        __config.cases
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

/// Asserts a condition inside a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when `cond` is false (top-level of the test body
/// only, mirroring how the workspace uses the real macro).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return $crate::test_runner::CaseResult::Skip;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn cases_are_deterministic_per_name_and_index() {
        let mut a = TestRng::for_case("x::y", 3);
        let mut b = TestRng::for_case("x::y", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("x::y", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_strategies_respect_bounds() {
        let mut rng = TestRng::for_case("t", 0);
        for _ in 0..1000 {
            let v = (3usize..9).new_value(&mut rng);
            assert!((3..9).contains(&v));
            let f = (-1.0f32..1.0).new_value(&mut rng);
            assert!((-1.0..1.0).contains(&f));
            let i = (1usize..=4).new_value(&mut rng);
            assert!((1..=4).contains(&i));
        }
    }

    #[test]
    fn vec_and_select_and_map_compose() {
        let mut rng = TestRng::for_case("t2", 0);
        let s = prop::collection::vec(prop::sample::select(vec![1u32, 2, 3]), 2..5)
            .prop_map(|v| v.len());
        for _ in 0..100 {
            let n = s.new_value(&mut rng);
            assert!((2..5).contains(&n));
        }
    }

    #[test]
    fn filter_rejects_values() {
        let mut rng = TestRng::for_case("t3", 0);
        let s = (0u32..100).prop_filter("even", |x| x % 2 == 0);
        for _ in 0..100 {
            assert_eq!(s.new_value(&mut rng) % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_runs(x in 1usize..10, (a, b) in (0u32..5, 0u32..5)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(a < 5 && b < 5);
        }

        #[test]
        fn assume_skips_cases(x in 0usize..10) {
            prop_assume!(x > 4);
            prop_assert!(x > 4);
        }
    }
}
