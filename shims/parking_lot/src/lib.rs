//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API:
//! `lock()` returns the guard directly, and `Condvar::wait` takes `&mut
//! MutexGuard` instead of consuming it. Lock poisoning is deliberately
//! ignored (parking_lot has no poisoning); a panic while holding a lock
//! leaves the data as-is, exactly like the real crate.

use std::sync::{self, TryLockError};

/// A mutual-exclusion lock with parking_lot's panic-free API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Condvar::wait can temporarily take the std guard out.
    guard: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(TryLockError::Poisoned(e)) => Some(MutexGuard {
                guard: Some(e.into_inner()),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard taken")
    }
}

/// A condition variable compatible with [`Mutex`]/[`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard's lock and blocks until notified;
    /// re-acquires before returning (parking_lot signature: the guard is
    /// borrowed, not consumed).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.guard.take().expect("guard taken");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(|e| e.into_inner());
        guard.guard = Some(std_guard);
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all blocked waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A reader-writer lock with parking_lot's panic-free API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_data() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = Arc::clone(&shared);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*s2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            42
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        let (m, cv) = &*shared;
        *m.lock() = true;
        cv.notify_all();
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn try_lock_fails_when_held() {
        let m = Mutex::new(1);
        let _g = m.lock();
        assert!(m.try_lock().is_none());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1 + *r2, 10);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
