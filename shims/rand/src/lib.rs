//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *exact* API subset it uses: [`SeedableRng::seed_from_u64`],
//! the [`Rng`] extension methods (`gen_range`, `gen_bool`, `gen`),
//! [`rngs::StdRng`], and [`distributions::Uniform`]. The generator is
//! xoshiro256** seeded through SplitMix64 — high-quality, tiny, and (unlike
//! the real `StdRng`) guaranteed stable across toolchain updates, which is
//! what the workspace's bit-reproducibility tests actually want.
//!
//! Everything is deterministic; there is no `thread_rng`/OS entropy on
//! purpose — all randomness in this repo must flow through explicit seeds.

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a single `u64` seed (via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core generator interface: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a range (`Range` or `RangeInclusive`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }

    /// A sample of a type with a canonical uniform distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Types with a canonical "whole domain / unit interval" distribution.
pub trait Standard {
    /// Samples the canonical distribution for this type.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// `u64` bits → uniform f64 in `[0, 1)` using the top 53 bits.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// Unbiased integer sample in `[0, n)` via Lemire-style widening multiply
/// with rejection.
#[inline]
fn uniform_below<R: RngCore>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(n as u128);
        let lo = m as u64;
        if lo >= n.wrapping_neg() % n {
            return (m >> 64) as u64;
        }
        // Rejected to remove modulo bias; retry.
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full-domain u64 range
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let u = unit_f64(rng.next_u64());
                let v = self.start as f64 + u * (self.end as f64 - self.start as f64);
                // Guard the open upper bound against FP round-up.
                if v >= self.end as f64 { self.start } else { v as $t }
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Distribution objects, mirroring `rand::distributions`.
pub mod distributions {
    use super::RngCore;

    /// A distribution that can be sampled with any generator.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[lo, hi)`.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        lo: T,
        hi: T,
    }

    impl<T: Copy> Uniform<T> {
        /// Uniform over the half-open interval `[lo, hi)`.
        pub fn new(lo: T, hi: T) -> Self {
            Uniform { lo, hi }
        }
    }

    macro_rules! impl_uniform {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Uniform<$t> {
                fn sample<R: RngCore>(&self, rng: &mut R) -> $t {
                    use super::SampleRange;
                    (self.lo..self.hi).sample_single(rng)
                }
            }
        )*};
    }

    impl_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded via SplitMix64 — the workspace's standard
    /// generator. Stable across platforms and toolchains by construction.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Alias: the "small" generator is the same engine here.
    pub type SmallRng = StdRng;

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: f32 = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&y));
            let z: u32 = rng.gen_range(0..=5);
            assert!(z <= 5);
        }
    }

    #[test]
    fn gen_range_covers_domain() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn uniform_distribution_samples_in_range() {
        use distributions::{Distribution, Uniform};
        let mut rng = StdRng::seed_from_u64(13);
        let d = Uniform::new(10u64, 20u64);
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!((10..20).contains(&x));
        }
    }
}
