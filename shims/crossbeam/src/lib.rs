//! Offline stand-in for the `crossbeam` crate.
//!
//! The workspace only uses `crossbeam::channel` (unbounded and
//! capacity-bounded MPMC channels). This vendored shim implements that
//! subset over `Mutex<VecDeque>` + `Condvar`. Semantics match what the comm
//! runtime relies on: FIFO order per channel, `recv` errors once every
//! sender is gone and the queue is drained, `send` errors once every
//! receiver is gone.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        not_empty: Condvar,
        /// Live sender endpoints; 0 ⇒ channel is closed for receiving once
        /// drained.
        senders: AtomicUsize,
        /// Live receiver endpoints; 0 ⇒ sends fail.
        receivers: AtomicUsize,
        /// Capacity bound (usize::MAX for unbounded). Sends past the bound
        /// simply queue: the workspace only uses bounded(1) as a oneshot
        /// completion slot, so a hard block on full is never needed.
        _capacity: usize,
    }

    /// Sending half of a channel.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Receiving half of a channel.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Error: all receivers disconnected; returns the unsent value.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like upstream crossbeam: Debug without requiring `T: Debug`.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error: all senders disconnected and the queue is empty.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error for non-blocking receives.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Queue is currently empty but senders remain.
        Empty,
        /// All senders disconnected and the queue is empty.
        Disconnected,
    }

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}
    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

    fn pair<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
            _capacity: capacity,
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        pair(usize::MAX)
    }

    /// Creates a capacity-bounded channel. See [`Inner::_capacity`] for the
    /// (deliberate) non-blocking-on-full semantics of this shim.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        pair(capacity)
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; fails if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.inner.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.push_back(value);
            drop(q);
            self.inner.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives; fails once all senders are gone
        /// and the queue is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.inner.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self
                    .inner
                    .not_empty
                    .wait(q)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.inner.senders.load(Ordering::Acquire) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake blocked receivers so they observe EOF.
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;

    #[test]
    fn fifo_order() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_errors_after_receiver_drops() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn try_recv_reports_empty_vs_disconnected() {
        let (tx, rx) = bounded::<u32>(1);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(3).unwrap();
        assert_eq!(rx.try_recv(), Ok(3));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn blocking_recv_wakes_on_send() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || rx.recv().unwrap());
        std::thread::sleep(std::time::Duration::from_millis(10));
        tx.send(77u64).unwrap();
        assert_eq!(h.join().unwrap(), 77);
    }

    #[test]
    fn cloned_senders_feed_one_receiver() {
        let (tx, rx) = unbounded();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || tx.send(i).unwrap())
            })
            .collect();
        drop(tx);
        for h in handles {
            h.join().unwrap();
        }
        let mut got: Vec<i32> = (0..4).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
        assert_eq!(rx.recv(), Err(RecvError));
    }
}
